/**
 * @file
 * Simulator-fidelity validation (paper §6.1: "Our simulator has very
 * high fidelity, with an error rate of no more than 3% compared with
 * the results in our real cluster experiments").
 *
 * This reproduction has no physical testbed, but it has the next best
 * thing: the iteration-granular executor fleet (the "real system"
 * model) and the fluid event simulator. The ReplayValidator feeds the
 * simulator's recorded allocation timeline, command for command,
 * through the ExecutorFleet and compares per-job completion times.
 * Agreement bounds the error the fluid approximation introduces —
 * the analogue of the paper's simulator-vs-testbed comparison.
 */
#ifndef EF_EXEC_REPLAY_H_
#define EF_EXEC_REPLAY_H_

#include <vector>

#include "exec/control_plane.h"
#include "sim/metrics.h"
#include "workload/trace.h"

namespace ef {

/** Per-job comparison between fluid simulation and executor replay. */
struct ReplayJobResult
{
    JobId job = kInvalidJob;
    Time sim_finish = kTimeInfinity;     ///< fluid simulator
    Time replay_finish = kTimeInfinity;  ///< executor fleet
    /** |replay - sim| / (sim - submit); 0 when both never finish. */
    double relative_error = 0.0;
};

/** Aggregate fidelity report. */
struct ReplayReport
{
    std::vector<ReplayJobResult> jobs;
    double max_relative_error = 0.0;
    double mean_relative_error = 0.0;
    std::size_t compared = 0;
};

/**
 * Replay a run's allocation log through an ExecutorFleet and compare
 * completion times. Only jobs that finished in the simulation and
 * were not rolled back by node failures are compared (failure
 * rollback points differ legitimately between the two models).
 */
ReplayReport replay_and_compare(const Trace &trace,
                                const RunResult &result,
                                const OverheadConfig &overhead_config);

}  // namespace ef

#endif  // EF_EXEC_REPLAY_H_

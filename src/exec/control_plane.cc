#include "exec/control_plane.h"

#include "common/check.h"

namespace ef {

std::string
command_type_name(CommandType type)
{
    switch (type) {
      case CommandType::kLaunch: return "launch";
      case CommandType::kScale: return "scale";
      case CommandType::kSuspend: return "suspend";
      case CommandType::kShutdown: return "shutdown";
    }
    return "?";
}

ExecutorFleet::ExecutorFleet(const PerfModel *perf,
                             const OverheadModel *overhead,
                             Time rpc_latency_s)
    : perf_(perf), overhead_(overhead), rpc_latency_s_(rpc_latency_s)
{
    EF_CHECK(perf_ != nullptr && overhead_ != nullptr);
    EF_CHECK(rpc_latency_s_ >= 0.0);
}

void
ExecutorFleet::register_job(const JobSpec &spec)
{
    EF_FATAL_IF(executions_.count(spec.id) > 0,
                "job " << spec.id << " already registered");
    executions_.emplace(spec.id, std::make_unique<JobExecution>(
                                     spec, perf_, overhead_));
}

bool
ExecutorFleet::knows(JobId job) const
{
    return executions_.count(job) > 0;
}

CommandAck
ExecutorFleet::issue(CommandType type, JobId job,
                     const std::vector<GpuCount> &gpus, Time now)
{
    EF_CHECK_MSG(now >= last_issue_,
                 "commands must be issued in time order");
    last_issue_ = now;

    Command command;
    command.seq = next_seq_++;
    command.issued_at = now;
    command.type = type;
    command.job = job;
    command.gpus = gpus;
    log_.push_back(command);

    CommandAck ack;
    ack.seq = command.seq;
    ack.applied_at = now + rpc_latency_s_;

    auto it = executions_.find(job);
    if (it == executions_.end()) {
        ack.ok = false;
        acks_.push_back(ack);
        return ack;
    }
    JobExecution &exec = *it->second;
    switch (type) {
      case CommandType::kLaunch:
      case CommandType::kScale:
        EF_CHECK_MSG(!gpus.empty(),
                     command_type_name(type) << " needs a GPU set");
        if (exec.finished()) {
            ack.ok = false;
            break;
        }
        exec.scale(ack.applied_at, gpus);
        ack.ok = true;
        break;
      case CommandType::kSuspend:
        exec.scale(ack.applied_at, {});
        ack.ok = true;
        break;
      case CommandType::kShutdown:
        exec.scale(ack.applied_at, {});
        executions_.erase(it);
        ack.ok = true;
        break;
    }
    acks_.push_back(ack);
    return ack;
}

void
ExecutorFleet::advance(Time now)
{
    for (auto &[id, exec] : executions_)
        exec->advance(now);
}

const JobExecution &
ExecutorFleet::execution(JobId job) const
{
    auto it = executions_.find(job);
    EF_CHECK_MSG(it != executions_.end(),
                 "job " << job << " is unknown to the fleet");
    return *it->second;
}

std::size_t
ExecutorFleet::finished_count() const
{
    std::size_t n = 0;
    for (const auto &[id, exec] : executions_)
        n += exec->finished() ? 1 : 0;
    return n;
}

std::size_t
ExecutorFleet::running_count() const
{
    std::size_t n = 0;
    for (const auto &[id, exec] : executions_)
        n += (!exec->finished() && exec->worker_count() > 0) ? 1 : 0;
    return n;
}

}  // namespace ef

#include "exec/control_plane.h"

#include "common/check.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ef {

std::string
command_type_name(CommandType type)
{
    switch (type) {
      case CommandType::kLaunch: return "launch";
      case CommandType::kScale: return "scale";
      case CommandType::kSuspend: return "suspend";
      case CommandType::kShutdown: return "shutdown";
    }
    return "?";
}

ExecutorFleet::ExecutorFleet(const PerfModel *perf,
                             const OverheadModel *overhead,
                             Time rpc_latency_s)
    : perf_(perf), overhead_(overhead), rpc_latency_s_(rpc_latency_s)
{
    EF_CHECK(perf_ != nullptr && overhead_ != nullptr);
    EF_CHECK(rpc_latency_s_ >= 0.0);
}

void
ExecutorFleet::register_job(const JobSpec &spec)
{
    EF_FATAL_IF(executions_.count(spec.id) > 0,
                "job " << spec.id << " already registered");
    auto exec = std::make_unique<JobExecution>(spec, perf_, overhead_);
    exec->set_fault_injector(fault_);
    executions_.emplace(spec.id, std::move(exec));
}

void
ExecutorFleet::set_fault_injector(FaultInjector *fault)
{
    fault_ = fault;
    for (auto &[id, exec] : executions_)
        exec->set_fault_injector(fault);
}

void
ExecutorFleet::set_gpu_available(GpuCount gpu, bool available)
{
    if (available)
        down_gpus_.erase(gpu);
    else
        down_gpus_.insert(gpu);
}

void
ExecutorFleet::set_server_available(int server, bool available)
{
    const Topology &topo = perf_->topology();
    GpuCount base = topo.first_gpu_of_server(server);
    for (GpuCount g = base; g < base + topo.gpus_per_server(); ++g)
        set_gpu_available(g, available);
}

std::uint64_t
ExecutorFleet::applied_seq(JobId job) const
{
    auto it = applied_seq_.find(job);
    return it == applied_seq_.end() ? 0 : it->second;
}

bool
ExecutorFleet::deliver(JobId job, Time now, CommandAck *ack)
{
    if (fault_ == nullptr)
        return true;
    // One extra-latency draw per command, not per attempt.
    ack->applied_at += fault_->rpc_delay();
    int forced = fault_->take_scripted_rpc_drops(job, now);
    bool delivered = false;
    for (;;) {
        bool lost = forced > 0 || fault_->rpc_attempt_lost();
        if (forced > 0)
            --forced;
        if (!lost) {
            // Request and ack both arrived. If a lost-ack attempt
            // already delivered it, the executor sees the same seq
            // again and drops the duplicate (idempotent application).
            if (delivered)
                ++duplicates_suppressed_;
            return true;
        }
        // A loss can be the request (nothing happened) or the ack
        // (command applied, confirmation lost); either way we retry.
        if (fault_->rpc_loss_was_ack()) {
            if (delivered)
                ++duplicates_suppressed_;
            delivered = true;
        }
        int attempt = ack->retries + 1;
        if (attempt > fault_->config().rpc_max_retries) {
            ack->gave_up = true;
            ++rpc_gave_up_;
            obs::emit({now, obs::EventKind::kRpcGiveUp, job, attempt});
            obs::count("exec.rpc.gave_up");
            return delivered;
        }
        ack->retries = attempt;
        ++rpc_retries_;
        obs::emit({now, obs::EventKind::kRpcRetry, job, attempt});
        obs::count("exec.rpc.retries");
        ack->applied_at += fault_->rpc_backoff(attempt);
    }
}

bool
ExecutorFleet::knows(JobId job) const
{
    return executions_.count(job) > 0;
}

CommandAck
ExecutorFleet::issue(CommandType type, JobId job,
                     const std::vector<GpuCount> &gpus, Time now)
{
    EF_FATAL_IF(now < last_issue_,
                command_type_name(type)
                    << " for job " << job << " issued at t=" << now
                    << " before the previous command at t=" << last_issue_
                    << "; commands must be issued in non-decreasing "
                       "time order");
    last_issue_ = now;

    Command command;
    command.seq = next_seq_++;
    command.issued_at = now;
    command.type = type;
    command.job = job;
    command.gpus = gpus;
    log_.push_back(command);
    obs::emit({now, obs::EventKind::kCommand, job,
               static_cast<std::int64_t>(command.seq),
               static_cast<std::int64_t>(type)});
    obs::count("exec.commands");

    CommandAck ack;
    ack.seq = command.seq;
    ack.applied_at = now + rpc_latency_s_;

    auto it = executions_.find(job);
    if (it == executions_.end()) {
        ack.ok = false;
        acks_.push_back(ack);
        return ack;
    }
    if (type == CommandType::kLaunch || type == CommandType::kScale) {
        EF_CHECK_MSG(!gpus.empty(),
                     command_type_name(type) << " needs a GPU set");
        for (GpuCount g : gpus) {
            if (down_gpus_.count(g) > 0) {
                // Never dispatch work onto failed hardware: reject
                // before delivery, leaving the execution untouched.
                ack.ok = false;
                ++rejected_commands_;
                acks_.push_back(ack);
                return ack;
            }
        }
    }

    JobExecution &exec = *it->second;
    bool applied = false;
    if (deliver(job, now, &ack)) {
        switch (type) {
          case CommandType::kLaunch:
          case CommandType::kScale:
            if (exec.finished())
                break;
            exec.scale(ack.applied_at, gpus);
            if (fault_ != nullptr && fault_->straggler_starts()) {
                exec.set_slowdown(fault_->straggler_slowdown());
                ++stragglers_observed_;
            }
            applied = true;
            break;
          case CommandType::kSuspend:
            exec.scale(ack.applied_at, {});
            applied = true;
            break;
          case CommandType::kShutdown:
            exec.scale(ack.applied_at, {});
            executions_.erase(it);
            applied = true;
            break;
        }
    }
    if (applied)
        applied_seq_[job] = command.seq;
    // A gave-up command may still have been applied (only acks lost);
    // the scheduler sees failure either way and must reconcile.
    ack.ok = applied && !ack.gave_up;
    acks_.push_back(ack);
    return ack;
}

void
ExecutorFleet::advance(Time now)
{
    for (auto &[id, exec] : executions_)
        exec->advance(now);
}

const JobExecution &
ExecutorFleet::execution(JobId job) const
{
    auto it = executions_.find(job);
    EF_CHECK_MSG(it != executions_.end(),
                 "job " << job << " is unknown to the fleet");
    return *it->second;
}

std::size_t
ExecutorFleet::finished_count() const
{
    std::size_t n = 0;
    for (const auto &[id, exec] : executions_)
        n += exec->finished() ? 1 : 0;
    return n;
}

std::size_t
ExecutorFleet::running_count() const
{
    std::size_t n = 0;
    for (const auto &[id, exec] : executions_)
        n += (!exec->finished() && exec->worker_count() > 0) ? 1 : 0;
    return n;
}

}  // namespace ef

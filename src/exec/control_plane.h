/**
 * @file
 * Control plane of the elastic training executor (paper §5: the
 * scheduler exchanges control messages with workers over gRPC).
 *
 * ExecutorFleet models that coordination layer: the scheduler issues
 * typed commands (launch, scale, suspend, shutdown) addressed to a
 * job; each command is delivered after an RPC latency and applied to
 * the job's iteration-granular JobExecution. Every command and its
 * acknowledgement land in an inspectable log, which is what the tests
 * (and a real deployment's observability) key on.
 */
#ifndef EF_EXEC_CONTROL_PLANE_H_
#define EF_EXEC_CONTROL_PLANE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "exec/executor.h"

namespace ef {

/** Message types the scheduler sends to the executor. */
enum class CommandType { kLaunch, kScale, kSuspend, kShutdown };

std::string command_type_name(CommandType type);

/** One control message. */
struct Command
{
    std::uint64_t seq = 0;
    Time issued_at = 0.0;
    CommandType type = CommandType::kLaunch;
    JobId job = kInvalidJob;
    std::vector<GpuCount> gpus;  ///< empty for suspend/shutdown
};

/** Executor-side acknowledgement. */
struct CommandAck
{
    std::uint64_t seq = 0;
    Time applied_at = 0.0;  ///< when the worker group acted on it
    bool ok = false;
    int retries = 0;        ///< delivery attempts beyond the first
    /** True when every attempt up to rpc_max_retries was lost. The
     *  command may still have been applied if only acks were lost. */
    bool gave_up = false;
};

/** The scheduler-facing executor coordination layer. */
class ExecutorFleet
{
  public:
    /**
     * @param rpc_latency_s control-message delivery latency; the
     *        command takes effect this long after being issued.
     */
    ExecutorFleet(const PerfModel *perf, const OverheadModel *overhead,
                  Time rpc_latency_s = 0.05);

    /** Make a job known to the fleet (before any command). */
    void register_job(const JobSpec &spec);
    bool knows(JobId job) const;

    /**
     * Borrow a fault injector (may be null). Delivery then becomes
     * unreliable: a lost request is retried after bounded exponential
     * backoff, a lost ack redelivers a duplicate that the seq-based
     * dedup suppresses, and launches can come up straggling.
     */
    void set_fault_injector(FaultInjector *fault);

    /**
     * Mark one GPU / one whole server failed or repaired. While down,
     * launch/scale commands naming any down GPU are rejected
     * (ok=false) without touching the execution.
     */
    void set_gpu_available(GpuCount gpu, bool available);
    void set_server_available(int server, bool available);

    /**
     * Issue a command at time @p now (non-decreasing across calls).
     * kLaunch and kScale carry the GPU set; kSuspend checkpoints and
     * frees the workers; kShutdown additionally forgets the job.
     * Commands to finished or unknown jobs, or naming down GPUs, are
     * acked with ok=false.
     */
    CommandAck issue(CommandType type, JobId job,
                     const std::vector<GpuCount> &gpus, Time now);

    /** Advance all executions to @p now. */
    void advance(Time now);

    const JobExecution &execution(JobId job) const;

    std::size_t finished_count() const;
    std::size_t running_count() const;

    /** Full command history, in issue order. */
    const std::vector<Command> &command_log() const { return log_; }
    const std::vector<CommandAck> &ack_log() const { return acks_; }

    // --- fault observability --------------------------------------------
    int rpc_retries() const { return rpc_retries_; }
    int rpc_gave_up() const { return rpc_gave_up_; }
    int duplicates_suppressed() const { return duplicates_suppressed_; }
    int rejected_commands() const { return rejected_commands_; }
    int stragglers_observed() const { return stragglers_observed_; }
    /** Seq of the last command applied to @p job (idempotency record;
     *  0 when none has been applied). */
    std::uint64_t applied_seq(JobId job) const;

  private:
    /**
     * Unreliable delivery of one command: fills retries/gave_up and
     * returns whether the command reached the executor (possibly via a
     * lost-ack attempt), bumping applied_at by the backoff spent.
     */
    bool deliver(JobId job, Time now, CommandAck *ack);

    const PerfModel *perf_;
    const OverheadModel *overhead_;
    Time rpc_latency_s_;
    Time last_issue_ = 0.0;
    std::uint64_t next_seq_ = 1;  ///< 0 is reserved for "never applied"
    FaultInjector *fault_ = nullptr;  ///< borrowed, may be null

    std::map<JobId, std::unique_ptr<JobExecution>> executions_;
    std::vector<Command> log_;
    std::vector<CommandAck> acks_;
    std::set<GpuCount> down_gpus_;
    std::map<JobId, std::uint64_t> applied_seq_;
    int rpc_retries_ = 0;
    int rpc_gave_up_ = 0;
    int duplicates_suppressed_ = 0;
    int rejected_commands_ = 0;
    int stragglers_observed_ = 0;
};

}  // namespace ef

#endif  // EF_EXEC_CONTROL_PLANE_H_

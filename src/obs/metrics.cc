#include "obs/metrics.h"

#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/math_util.h"
#include "common/table.h"

namespace ef {
namespace obs {
namespace {

/**
 * Fixed formatting for dump values: enough digits to round-trip the
 * quantities we record (seconds, ratios, GPU counts) while staying
 * byte-stable.
 */
std::string
format_value(double v)
{
    return format_double(v, 6);
}

}  // namespace

void
Counter::inc(std::uint64_t n)
{
    // Saturate: a counter that has seen ~1.8e19 increments is pegged,
    // not wrapped back to small values that would read as a reset.
    const std::uint64_t room =
        std::numeric_limits<std::uint64_t>::max() - value_;
    value_ += n < room ? n : room;
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      buckets_(edges_.size() + 1, 0)
{
    EF_CHECK_MSG(!edges_.empty(), "histogram needs at least one edge");
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        EF_CHECK_MSG(edges_[i - 1] < edges_[i],
                     "histogram edges must be strictly increasing");
    }
}

void
Histogram::observe(double v)
{
    std::size_t bucket = edges_.size();  // overflow by default
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (v <= edges_[i]) {
            bucket = i;
            break;
        }
    }
    ++buckets_[bucket];
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
histogram_quantile(const Histogram &h, double q)
{
    if (h.count() == 0)
        return 0.0;
    q = clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(h.count());
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        const std::uint64_t in_bucket = h.buckets()[i];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(seen + in_bucket) < rank) {
            seen += in_bucket;
            continue;
        }
        // The target sample lives in bucket i: interpolate between its
        // bounds. The first bucket's lower bound and the overflow
        // bucket's upper bound are unbounded; substitute the observed
        // extremes.
        const double lo = i == 0 ? h.min() : h.edges()[i - 1];
        const double hi =
            i < h.edges().size() ? h.edges()[i] : h.max();
        const double within =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(in_bucket);
        const double v = lo + (hi - lo) * clamp(within, 0.0, 1.0);
        return clamp(v, h.min(), h.max());
    }
    return h.max();
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string(name), Counter{}).first;
    return it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), Gauge{}).first;
    return it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           const std::vector<double> &edges)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), Histogram(edges))
                 .first;
    }
    return it->second;
}

bool
MetricsRegistry::empty() const
{
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::string
MetricsRegistry::text_dump() const
{
    std::ostringstream out;
    for (const auto &[name, c] : counters_)
        out << name << "=" << c.value() << "\n";
    for (const auto &[name, g] : gauges_)
        out << name << "=" << format_value(g.value()) << "\n";
    for (const auto &[name, h] : histograms_) {
        out << name << ".count=" << h.count() << "\n"
            << name << ".sum=" << format_value(h.sum()) << "\n"
            << name << ".mean=" << format_value(h.mean()) << "\n"
            << name << ".min=" << format_value(h.min()) << "\n"
            << name << ".max=" << format_value(h.max()) << "\n";
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
            out << name << ".le.";
            if (i < h.edges().size())
                out << format_value(h.edges()[i]);
            else
                out << "inf";
            out << "=" << h.buckets()[i] << "\n";
        }
    }
    return out.str();
}

std::string
MetricsRegistry::csv_dump() const
{
    std::vector<std::string> header = {"name", "type", "field", "value"};
    std::vector<std::vector<std::string>> rows;
    for (const auto &[name, c] : counters_)
        rows.push_back({name, "counter", "value",
                        std::to_string(c.value())});
    for (const auto &[name, g] : gauges_)
        rows.push_back({name, "gauge", "value",
                        format_value(g.value())});
    for (const auto &[name, h] : histograms_) {
        rows.push_back({name, "histogram", "count",
                        std::to_string(h.count())});
        rows.push_back({name, "histogram", "sum",
                        format_value(h.sum())});
        rows.push_back({name, "histogram", "mean",
                        format_value(h.mean())});
        rows.push_back({name, "histogram", "min",
                        format_value(h.min())});
        rows.push_back({name, "histogram", "max",
                        format_value(h.max())});
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
            std::string field = "le.";
            field += i < h.edges().size()
                         ? format_value(h.edges()[i])
                         : std::string("inf");
            rows.push_back({name, "histogram", field,
                            std::to_string(h.buckets()[i])});
        }
    }
    return to_csv(header, rows);
}

}  // namespace obs
}  // namespace ef

#include "obs/trace.h"

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace ef {
namespace obs {

const char *
event_kind_name(EventKind kind)
{
    switch (kind) {
      case EventKind::kJobSubmit: return "job_submit";
      case EventKind::kJobAdmit: return "job_admit";
      case EventKind::kJobReject: return "job_reject";
      case EventKind::kJobFinish: return "job_finish";
      case EventKind::kJobEvict: return "job_evict";
      case EventKind::kJobDemote: return "job_demote";
      case EventKind::kAllocChange: return "alloc_change";
      case EventKind::kMigration: return "migration";
      case EventKind::kScale: return "scale";
      case EventKind::kCheckpoint: return "checkpoint";
      case EventKind::kPlacementFail: return "placement_fail";
      case EventKind::kReplanBegin: return "replan_begin";
      case EventKind::kReplanEnd: return "replan_end";
      case EventKind::kAdmissionShare: return "admission_share";
      case EventKind::kAdmissionOutcome: return "admission_outcome";
      case EventKind::kAllocationRound: return "allocation_round";
      case EventKind::kServerDown: return "server_down";
      case EventKind::kServerUp: return "server_up";
      case EventKind::kGpuDown: return "gpu_down";
      case EventKind::kGpuUp: return "gpu_up";
      case EventKind::kStragglerStart: return "straggler_start";
      case EventKind::kStragglerEnd: return "straggler_end";
      case EventKind::kRpcRetry: return "rpc_retry";
      case EventKind::kRpcGiveUp: return "rpc_give_up";
      case EventKind::kCommand: return "command";
      case EventKind::kServeShed: return "serve_shed";
      case EventKind::kServeRound: return "serve_round";
      case EventKind::kServeTimeout: return "serve_timeout";
      case EventKind::kShardPlan: return "shard_plan";
      case EventKind::kRecoveryBegin: return "recovery_begin";
      case EventKind::kRecoveryEnd: return "recovery_end";
      case EventKind::kDefragRound: return "defrag_round";
    }
    return "?";
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity)
{
    EF_CHECK_MSG(capacity_ > 0, "ring buffer needs capacity >= 1");
    ring_.reserve(capacity_);
}

void
RingBufferSink::record(const TraceEvent &event)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
        return;
    }
    full_ = true;
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    if (dropped_ == 0) {
        // Exactly one warning per sink: under soak load every further
        // record() would otherwise flood stderr with the same news.
        EF_WARN("trace ring buffer full (capacity "
                << capacity_
                << "); oldest events are being dropped silently from "
                   "here on");
    }
    ++dropped_;
    count("obs.trace.dropped");
}

std::size_t
RingBufferSink::size() const
{
    return ring_.size();
}

std::vector<TraceEvent>
RingBufferSink::events() const
{
    if (!full_)
        return ring_;
    std::vector<TraceEvent> ordered;
    ordered.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        ordered.push_back(ring_[(head_ + i) % capacity_]);
    return ordered;
}

}  // namespace obs
}  // namespace ef

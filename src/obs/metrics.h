/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * histograms with a deterministic snapshot/dump API.
 *
 * Instruments publish through the process-wide registry hook (null
 * when disabled — one branch per call site, mirroring obs/trace.h).
 * All state is plain arithmetic on sim-derived values: no wall clocks,
 * no allocation ordering effects, so a metered run stays byte-identical
 * to an unmetered one. Names are dotted lowercase paths
 * ("sim.replans.executed"); the registry stores them in sorted order
 * so every dump is stable across runs and platforms.
 */
#ifndef EF_OBS_METRICS_H_
#define EF_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ef {
namespace obs {

/** Monotonic counter; add() saturates instead of wrapping. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1);
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-write-wins scalar. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram. @p edges are strictly increasing inclusive
 * upper bounds; a sample lands in the first bucket whose edge it does
 * not exceed, or in the implicit overflow bucket past the last edge.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> edges);

    void observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const;

    const std::vector<double> &edges() const { return edges_; }
    /** Per-bucket counts; size() == edges().size() + 1 (overflow last). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Quantile estimate from the bucketed counts (q in [0, 1]): locate the
 * bucket holding the ceil(q * count)-th sample and interpolate
 * linearly inside it, clamping to the observed min/max so estimates
 * never leave the recorded range. Exact at the resolution of the
 * bucket edges — the soak harness reports p50/p99 decision latency
 * through this, so choose edges dense where the quantiles matter.
 * Returns 0 for an empty histogram.
 */
double histogram_quantile(const Histogram &h, double q);

/** Owns all metrics of one run; instruments look up by name. */
class MetricsRegistry
{
  public:
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    /**
     * @p edges apply on first creation; later lookups of the same name
     * return the existing histogram unchanged.
     */
    Histogram &histogram(std::string_view name,
                         const std::vector<double> &edges);

    bool empty() const;

    /**
     * Deterministic dump, one metric per line in name order:
     *   counter:   name=value
     *   gauge:     name=value
     *   histogram: name.count=, name.sum=, name.mean=, name.min=,
     *              name.max=, and name.le.<edge>=count per bucket
     *              (name.le.inf for the overflow bucket).
     */
    std::string text_dump() const;

    /** Same content as CSV rows: name,type,field,value. */
    std::string csv_dump() const;

  private:
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

namespace detail {
/** The installed registry; null = metrics disabled. */
inline MetricsRegistry *g_metrics = nullptr;
}  // namespace detail

/** The active registry, or null when metrics are disabled. */
inline MetricsRegistry *
metrics()
{
    return detail::g_metrics;
}

/** Install a registry for the lifetime of the scope (nests). */
class MetricsScope
{
  public:
    explicit MetricsScope(MetricsRegistry *registry)
        : prev_(detail::g_metrics)
    {
        detail::g_metrics = registry;
    }
    ~MetricsScope() { detail::g_metrics = prev_; }

    MetricsScope(const MetricsScope &) = delete;
    MetricsScope &operator=(const MetricsScope &) = delete;

  private:
    MetricsRegistry *prev_;
};

// --- one-branch-when-disabled emission helpers --------------------------

inline void
count(std::string_view name, std::uint64_t n = 1)
{
    if (detail::g_metrics != nullptr)
        detail::g_metrics->counter(name).inc(n);
}

inline void
gauge_set(std::string_view name, double v)
{
    if (detail::g_metrics != nullptr)
        detail::g_metrics->gauge(name).set(v);
}

inline void
observe(std::string_view name, const std::vector<double> &edges,
        double v)
{
    if (detail::g_metrics != nullptr)
        detail::g_metrics->histogram(name, edges).observe(v);
}

}  // namespace obs
}  // namespace ef

#endif  // EF_OBS_METRICS_H_

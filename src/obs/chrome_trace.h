/**
 * @file
 * Chrome `trace_event` JSON export of a recorded event stream.
 *
 * The exporter is a pure post-processing pass over TraceEvents: it
 * pairs allocation events into duration spans and writes the JSON
 * object format (`{"traceEvents": [...]}`) that `chrome://tracing` and
 * Perfetto load directly. Timestamps are simulation microseconds.
 *
 * Track layout:
 *   pid 1 "jobs"      one row (tid = job id) per job: complete "X"
 *                     spans for every interval the job held GPUs
 *                     (named "run xN"), plus instant events for
 *                     lifecycle transitions (submit/admit/finish/...).
 *   pid 2 "GPUs"      one row (tid = GPU id) per device: a span per
 *                     owning job, so fragmentation and idle gaps are
 *                     visible per device.
 *   pid 3 "scheduler" async "b"/"e" spans for every replan (args say
 *                     executed vs elided and how many resizes were
 *                     applied) plus instants for admission verdicts,
 *                     faults, and control-plane retries.
 */
#ifndef EF_OBS_CHROME_TRACE_H_
#define EF_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.h"

namespace ef {
namespace obs {

/**
 * Render @p events (emission order) as a Chrome trace JSON document.
 * @p dropped_events, when nonzero (ring-buffer overflow), is surfaced
 * in the document's otherData section so a truncated timeline is
 * self-describing.
 */
std::string chrome_trace_json(const std::vector<TraceEvent> &events,
                              std::uint64_t dropped_events = 0);

}  // namespace obs
}  // namespace ef

#endif  // EF_OBS_CHROME_TRACE_H_

/**
 * @file
 * Trace recording: the TraceSink interface, the in-memory ring-buffer
 * sink, and the process-wide recorder hook instrumented code emits
 * through.
 *
 * Design constraints (see DESIGN.md "Observability"):
 *
 *  - A *disabled* recorder must cost exactly one predictable branch at
 *    every instrumentation site: `emit()` loads one pointer and
 *    returns. Call sites that need to build a non-trivial event (GPU
 *    id vectors) guard with `tracing()` first so the payload is never
 *    materialized when nobody listens.
 *  - Recording must not perturb the simulation: sinks only copy the
 *    event; nothing flows back. Tests assert RunResult::state_hash is
 *    identical with tracing on and off.
 *  - Single-threaded by design, like the simulator itself. The hook is
 *    installed with an RAII scope so tests and tools cannot leak a
 *    recorder into a later run.
 */
#ifndef EF_OBS_TRACE_H_
#define EF_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.h"

namespace ef {
namespace obs {

/** Receives every emitted event while installed. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent &event) = 0;
};

/**
 * Fixed-capacity in-memory sink: keeps the most recent @p capacity
 * events and counts the ones it had to drop. events() returns them in
 * emission order.
 */
class RingBufferSink : public TraceSink
{
  public:
    explicit RingBufferSink(std::size_t capacity);

    void record(const TraceEvent &event) override;

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> events() const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /** Events evicted because the buffer was full. */
    std::uint64_t dropped() const { return dropped_; }

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< next write position once full
    bool full_ = false;
    std::uint64_t dropped_ = 0;
};

namespace detail {
/** The installed sink; null = recording disabled (the common case). */
inline TraceSink *g_trace_sink = nullptr;
}  // namespace detail

/** Is a recorder installed? Use to gate expensive event construction. */
inline bool
tracing()
{
    return detail::g_trace_sink != nullptr;
}

/** Emit one event; a single branch and no work when disabled. */
inline void
emit(const TraceEvent &event)
{
    if (detail::g_trace_sink != nullptr)
        detail::g_trace_sink->record(event);
}

/**
 * Install @p sink for the lifetime of the scope (restores the previous
 * sink on destruction, so scopes nest).
 */
class TraceScope
{
  public:
    explicit TraceScope(TraceSink *sink) : prev_(detail::g_trace_sink)
    {
        detail::g_trace_sink = sink;
    }
    ~TraceScope() { detail::g_trace_sink = prev_; }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceSink *prev_;
};

}  // namespace obs
}  // namespace ef

#endif  // EF_OBS_TRACE_H_

/**
 * @file
 * The structured trace vocabulary of `ef::obs`.
 *
 * Every observable action in the platform — job lifecycle, admission
 * verdicts, replans, scaling/migration, faults, control-plane traffic —
 * is one typed, sim-timestamped TraceEvent. Events are plain data: the
 * recorder never interprets them, sinks only buffer them, and the
 * Chrome-trace exporter (obs/chrome_trace.h) turns them into a
 * timeline after the run. Emission must never feed back into
 * simulation state; a run with recording enabled is byte-identical
 * (same RunResult, same state_hash) to one without.
 *
 * Field conventions per kind are documented on the enumerators; `a`
 * and `b` are generic integer payloads, `x` a generic scalar, and
 * `ids` a GPU-id list (allocation events only).
 */
#ifndef EF_OBS_EVENT_H_
#define EF_OBS_EVENT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ef {
namespace obs {

enum class EventKind {
    // --- job lifecycle (simulator) --------------------------------------
    kJobSubmit,       ///< job arrived; a = requested_gpus
    kJobAdmit,        ///< admission verdict: admitted
    kJobReject,       ///< admission verdict: dropped at submission
    kJobFinish,       ///< termination condition reached
    kJobEvict,        ///< fault eviction; x = iterations rolled back
    kJobDemote,       ///< SLO job demoted to best-effort after a fault

    // --- allocation and placement ---------------------------------------
    kAllocChange,     ///< job's concrete GPU set changed; ids = GPU ids
                      ///< (empty = suspended/released), a = old count
    kMigration,       ///< defrag relocation; ids = new GPU ids
    kScale,           ///< resize applied; a = old count, b = new count
    kCheckpoint,      ///< checkpoint write; a = 1 ok / 0 failed
    kPlacementFail,   ///< placement request unsatisfiable; a = want

    // --- scheduler / planner --------------------------------------------
    kReplanBegin,     ///< scheduler invocation starts; a = active jobs
    kReplanEnd,       ///< a = 1 executed / 0 elided; b = resizes applied
    kAdmissionShare,  ///< Algorithm 1 filled one job; a = peak GPUs of
                      ///< its minimum satisfactory share, x = deadline
    kAdmissionOutcome,///< Algorithm 1 finished; a = feasible (0/1),
                      ///< b = jobs planned
    kAllocationRound, ///< Algorithm 2 finished; a = SLO jobs,
                      ///< b = best-effort jobs, x = unallocated GPUs

    // --- faults (simulator fault path) ----------------------------------
    kServerDown,      ///< a = server index, b = jobs evicted
    kServerUp,        ///< a = server index
    kGpuDown,         ///< a = GPU id, b = 1 if a job was evicted
    kGpuUp,           ///< a = GPU id
    kStragglerStart,  ///< x = slowdown factor
    kStragglerEnd,

    // --- control plane ---------------------------------------------------
    kRpcRetry,        ///< a = attempt number
    kRpcGiveUp,       ///< command abandoned after max retries
    kCommand,         ///< executor command issued; a = seq,
                      ///< b = CommandType as int

    // --- service mode (ef::serve, streaming admission) -------------------
    kServeShed,       ///< submission shed; a = ShedVerdict as int,
                      ///< b = queue depth at the verdict
    kServeRound,      ///< planning round drained the queue; a = batch
                      ///< size, b = 1 when horizon-forced (no token)
    kServeTimeout,    ///< replan watchdog fired; a = measured planning
                      ///< cost, b = budget

    // --- shard-parallel planning (DESIGN.md §10) --------------------------
    kShardPlan,       ///< one planner shard's phase of a round;
                      ///< a = shard index, b = deterministic cost
                      ///< units spent in the shard, x = the round's
                      ///< max/mean shard-cost imbalance ratio

    // --- crash recovery (DESIGN.md §12) ----------------------------------
    kRecoveryBegin,   ///< snapshot loaded; a = journal records read,
                      ///< b = round commits to replay
    kRecoveryEnd,     ///< recovery verified; a = rounds replayed

    // --- background defrag (DESIGN.md §14) -------------------------------
    kDefragRound,     ///< SA round done; a = moves committed,
                      ///< b = proposals evaluated, x = objective gain
};

/** Stable lowercase name (Chrome-trace event names, tests, dumps). */
const char *event_kind_name(EventKind kind);

/** One structured trace record. See the enumerator docs for fields. */
struct TraceEvent
{
    Time time = 0.0;
    EventKind kind = EventKind::kJobSubmit;
    JobId job = kInvalidJob;
    std::int64_t a = 0;
    std::int64_t b = 0;
    double x = 0.0;
    std::vector<std::int64_t> ids = {};
};

}  // namespace obs
}  // namespace ef

#endif  // EF_OBS_EVENT_H_

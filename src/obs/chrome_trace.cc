#include "obs/chrome_trace.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/json.h"

namespace ef {
namespace obs {
namespace {

constexpr std::int64_t kJobsPid = 1;
constexpr std::int64_t kGpusPid = 2;
constexpr std::int64_t kSchedPid = 3;

std::int64_t
micros(Time t)
{
    return static_cast<std::int64_t>(std::llround(t * 1e6));
}

/** An open "holds GPUs" interval on a job or GPU row. */
struct OpenSpan
{
    std::int64_t start_us = 0;
    std::int64_t arg = 0;  ///< GPU count (job rows) / job id (GPU rows)
};

class Exporter
{
  public:
    explicit Exporter(const std::vector<TraceEvent> &events)
        : events_(events)
    {}

    std::string render(std::uint64_t dropped);

  private:
    void meta_row(std::int64_t pid, std::int64_t tid,
                  const std::string &name);
    void meta_process(std::int64_t pid, const std::string &name);
    void complete(std::int64_t pid, std::int64_t tid,
                  const std::string &name, std::int64_t start_us,
                  std::int64_t end_us);
    void instant(std::int64_t pid, std::int64_t tid,
                 const char *name, std::int64_t ts);
    /** Start the args object of the event being written. */
    JsonWriter &args();

    void job_alloc_change(const TraceEvent &event);
    void close_job_span(JobId job, std::int64_t ts);
    void close_gpu_span(std::int64_t gpu, std::int64_t ts);

    const std::vector<TraceEvent> &events_;
    JsonWriter w_;

    std::map<JobId, OpenSpan> open_jobs_;
    std::map<std::int64_t, OpenSpan> open_gpus_;
    std::map<JobId, std::vector<std::int64_t>> held_gpus_;
    /** Per-shard write cursor: next free microsecond on the shard's
     *  scheduler row, so back-to-back rounds at the same sim time
     *  render as consecutive (never overlapping) spans. */
    std::map<std::int64_t, std::int64_t> shard_cursor_;
    std::int64_t end_us_ = 0;
    std::int64_t replan_id_ = 0;
    std::int64_t recovery_id_ = 0;
};

void
Exporter::meta_process(std::int64_t pid, const std::string &name)
{
    w_.begin_object()
        .kv("name", "process_name")
        .kv("ph", "M")
        .kv("pid", pid)
        .kv("tid", std::int64_t{0})
        .key("args")
        .begin_object()
        .kv("name", name)
        .end_object()
        .end_object();
    w_.begin_object()
        .kv("name", "process_sort_index")
        .kv("ph", "M")
        .kv("pid", pid)
        .kv("tid", std::int64_t{0})
        .key("args")
        .begin_object()
        .kv("sort_index", pid)
        .end_object()
        .end_object();
}

void
Exporter::meta_row(std::int64_t pid, std::int64_t tid,
                   const std::string &name)
{
    w_.begin_object()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", pid)
        .kv("tid", tid)
        .key("args")
        .begin_object()
        .kv("name", name)
        .end_object()
        .end_object();
}

void
Exporter::complete(std::int64_t pid, std::int64_t tid,
                   const std::string &name, std::int64_t start_us,
                   std::int64_t end_us)
{
    w_.begin_object()
        .kv("name", name)
        .kv("ph", "X")
        .kv("pid", pid)
        .kv("tid", tid)
        .kv("ts", start_us)
        .kv("dur", std::max<std::int64_t>(0, end_us - start_us))
        .end_object();
}

void
Exporter::instant(std::int64_t pid, std::int64_t tid, const char *name,
                  std::int64_t ts)
{
    // Left open: the caller appends args{...} and closes the object.
    w_.begin_object()
        .kv("name", name)
        .kv("ph", "i")
        .kv("s", "t")
        .kv("pid", pid)
        .kv("tid", tid)
        .kv("ts", ts);
}

JsonWriter &
Exporter::args()
{
    return w_.key("args").begin_object();
}

void
Exporter::close_job_span(JobId job, std::int64_t ts)
{
    auto it = open_jobs_.find(job);
    if (it == open_jobs_.end())
        return;
    complete(kJobsPid, job,
             "run x" + std::to_string(it->second.arg),
             it->second.start_us, ts);
    open_jobs_.erase(it);
}

void
Exporter::close_gpu_span(std::int64_t gpu, std::int64_t ts)
{
    auto it = open_gpus_.find(gpu);
    if (it == open_gpus_.end())
        return;
    complete(kGpusPid, gpu, "job " + std::to_string(it->second.arg),
             it->second.start_us, ts);
    open_gpus_.erase(it);
}

void
Exporter::job_alloc_change(const TraceEvent &event)
{
    const std::int64_t ts = micros(event.time);
    const auto count = static_cast<std::int64_t>(event.ids.size());

    // Job row: close the previous holding interval, open the new one.
    close_job_span(event.job, ts);
    if (count > 0)
        open_jobs_[event.job] = OpenSpan{ts, count};

    // GPU rows: diff against what the job held before this change.
    std::vector<std::int64_t> &held = held_gpus_[event.job];
    for (std::int64_t gpu : held) {
        if (std::find(event.ids.begin(), event.ids.end(), gpu) ==
            event.ids.end()) {
            close_gpu_span(gpu, ts);
        }
    }
    for (std::int64_t gpu : event.ids) {
        auto it = open_gpus_.find(gpu);
        if (it != open_gpus_.end() && it->second.arg == event.job)
            continue;  // unchanged owner, keep the span running
        close_gpu_span(gpu, ts);  // defensive: stale foreign span
        open_gpus_[gpu] = OpenSpan{ts, event.job};
    }
    held = event.ids;
}

std::string
Exporter::render(std::uint64_t dropped)
{
    w_.begin_object();
    w_.key("traceEvents").begin_array();

    meta_process(kJobsPid, "jobs");
    meta_process(kGpusPid, "GPUs");
    meta_process(kSchedPid, "scheduler");
    meta_row(kSchedPid, 0, "replans");
    meta_row(kSchedPid, 1, "admission");
    meta_row(kSchedPid, 2, "faults");

    // One scheduler row per planner shard (tids 3+s), only when the
    // stream has shard-parallel planning events at all.
    std::int64_t num_shards = 0;
    for (const TraceEvent &event : events_) {
        if (event.kind == EventKind::kShardPlan)
            num_shards = std::max(num_shards, event.a + 1);
    }
    for (std::int64_t s = 0; s < num_shards; ++s)
        meta_row(kSchedPid, 3 + s, "shard " + std::to_string(s));

    // Name every job / GPU row on first sight, in stream order.
    std::map<JobId, bool> seen_jobs;
    std::map<std::int64_t, bool> seen_gpus;
    for (const TraceEvent &event : events_) {
        end_us_ = std::max(end_us_, micros(event.time));
        if (event.job != kInvalidJob && !seen_jobs[event.job]) {
            seen_jobs[event.job] = true;
            meta_row(kJobsPid, event.job,
                     "job " + std::to_string(event.job));
        }
        if (event.kind == EventKind::kAllocChange ||
            event.kind == EventKind::kMigration) {
            for (std::int64_t gpu : event.ids) {
                if (!seen_gpus[gpu]) {
                    seen_gpus[gpu] = true;
                    meta_row(kGpusPid, gpu,
                             "gpu " + std::to_string(gpu));
                }
            }
        }
    }

    for (const TraceEvent &event : events_) {
        const std::int64_t ts = micros(event.time);
        switch (event.kind) {
          case EventKind::kAllocChange:
            job_alloc_change(event);
            break;
          case EventKind::kJobSubmit:
          case EventKind::kJobAdmit:
          case EventKind::kJobReject:
          case EventKind::kJobFinish:
          case EventKind::kJobEvict:
          case EventKind::kJobDemote:
          case EventKind::kScale:
          case EventKind::kCheckpoint:
          case EventKind::kMigration:
            instant(kJobsPid, event.job, event_kind_name(event.kind),
                    ts);
            args()
                .kv("a", event.a)
                .kv("b", event.b)
                .kv("x", event.x)
                .end_object();
            w_.end_object();
            break;
          case EventKind::kReplanBegin:
            w_.begin_object()
                .kv("name", "replan")
                .kv("cat", "replan")
                .kv("ph", "b")
                .kv("id", replan_id_)
                .kv("pid", kSchedPid)
                .kv("tid", std::int64_t{0})
                .kv("ts", ts);
            args().kv("active_jobs", event.a).end_object();
            w_.end_object();
            break;
          case EventKind::kReplanEnd:
            w_.begin_object()
                .kv("name", "replan")
                .kv("cat", "replan")
                .kv("ph", "e")
                .kv("id", replan_id_)
                .kv("pid", kSchedPid)
                .kv("tid", std::int64_t{0})
                .kv("ts", ts);
            args()
                .kv("outcome", event.a != 0 ? "executed" : "elided")
                .kv("resizes", event.b)
                .end_object();
            w_.end_object();
            ++replan_id_;
            break;
          case EventKind::kAdmissionShare:
          case EventKind::kAdmissionOutcome:
          case EventKind::kAllocationRound:
          case EventKind::kServeShed:
          case EventKind::kServeRound:
          case EventKind::kServeTimeout:
            instant(kSchedPid, 1, event_kind_name(event.kind), ts);
            args()
                .kv("job", event.job)
                .kv("a", event.a)
                .kv("b", event.b)
                .kv("x", event.x)
                .end_object();
            w_.end_object();
            break;
          case EventKind::kShardPlan: {
            // One complete span per shard per round on the shard's own
            // scheduler row. Durations are the shard's deterministic
            // planning cost units rendered as microseconds — a pure
            // function of the planning inputs, never wall clock, so
            // the exported trace stays byte-stable across runs.
            const std::int64_t start =
                std::max(ts, shard_cursor_[event.a]);
            shard_cursor_[event.a] = start + event.b;
            w_.begin_object()
                .kv("name", "shard_plan")
                .kv("cat", "shard")
                .kv("ph", "X")
                .kv("pid", kSchedPid)
                .kv("tid", 3 + event.a)
                .kv("ts", start)
                .kv("dur", event.b);
            args()
                .kv("shard", event.a)
                .kv("cost_units", event.b)
                .kv("imbalance", event.x)
                .end_object();
            w_.end_object();
            break;
          }
          case EventKind::kRecoveryBegin:
            // Async span on the scheduler's replan row: recovery is a
            // control-plane phase, visually aligned with the replans
            // it re-executes.
            w_.begin_object()
                .kv("name", "recovery")
                .kv("cat", "recovery")
                .kv("ph", "b")
                .kv("id", recovery_id_)
                .kv("pid", kSchedPid)
                .kv("tid", std::int64_t{0})
                .kv("ts", ts);
            args()
                .kv("journal_records", event.a)
                .kv("replay_rounds", event.b)
                .end_object();
            w_.end_object();
            break;
          case EventKind::kRecoveryEnd:
            w_.begin_object()
                .kv("name", "recovery")
                .kv("cat", "recovery")
                .kv("ph", "e")
                .kv("id", recovery_id_)
                .kv("pid", kSchedPid)
                .kv("tid", std::int64_t{0})
                .kv("ts", ts);
            args().kv("replayed", event.a).end_object();
            w_.end_object();
            ++recovery_id_;
            break;
          case EventKind::kServerDown:
          case EventKind::kServerUp:
          case EventKind::kGpuDown:
          case EventKind::kGpuUp:
          case EventKind::kStragglerStart:
          case EventKind::kStragglerEnd:
          case EventKind::kRpcRetry:
          case EventKind::kRpcGiveUp:
          case EventKind::kPlacementFail:
          case EventKind::kCommand:
          case EventKind::kDefragRound:
            instant(kSchedPid, 2, event_kind_name(event.kind), ts);
            args()
                .kv("job", event.job)
                .kv("a", event.a)
                .kv("b", event.b)
                .kv("x", event.x)
                .end_object();
            w_.end_object();
            break;
        }
    }

    // Close intervals still open when the stream ended, so every held
    // allocation is visible to the last recorded timestamp.
    while (!open_jobs_.empty())
        close_job_span(open_jobs_.begin()->first, end_us_);
    while (!open_gpus_.empty())
        close_gpu_span(open_gpus_.begin()->first, end_us_);

    w_.end_array();
    w_.kv("displayTimeUnit", "ms");
    w_.key("otherData")
        .begin_object()
        .kv("generator", "ef::obs")
        .kv("dropped_events", dropped)
        .end_object();
    w_.end_object();
    return w_.str();
}

}  // namespace

std::string
chrome_trace_json(const std::vector<TraceEvent> &events,
                  std::uint64_t dropped_events)
{
    return Exporter(events).render(dropped_events);
}

}  // namespace obs
}  // namespace ef

/**
 * @file
 * Shared binary codecs for the crash-recovery snapshots (DESIGN.md
 * §12): the value types that appear in both the simulator's and the
 * service's durable state (job specs, scaling curves, step series,
 * fault-injector state). Encoders never fail; decoders return false on
 * malformed input instead of aborting, so corrupt snapshots surface as
 * typed recovery errors, never as EF_CHECK aborts or UB.
 */
#ifndef EF_SERVE_STATE_CODEC_H_
#define EF_SERVE_STATE_CODEC_H_

#include "common/stats.h"
#include "core/scaling_curve.h"
#include "fault/fault.h"
#include "recover/codec.h"
#include "workload/job.h"

namespace ef {
namespace serve {

void encode_job_spec(recover::Encoder *enc, const JobSpec &spec);
bool decode_job_spec(recover::Decoder *dec, JobSpec *spec);

/** Stores the pow2 table; decode rebuilds via from_pow2_table with
 *  enforce_concave off, so the restored curve is bit-identical even
 *  when the original table was not concave. */
void encode_curve(recover::Encoder *enc, const ScalingCurve &curve);
bool decode_curve(recover::Decoder *dec, ScalingCurve *curve);

/** Decode replays record() over the stored points; StepSeries storage
 *  is canonical (strictly increasing times, run-length compressed), so
 *  the replay reproduces the exact vectors. */
void encode_step_series(recover::Encoder *enc, const StepSeries &series);
bool decode_step_series(recover::Decoder *dec, StepSeries *series);

void encode_fault_event(recover::Encoder *enc, const FaultEvent &event);
bool decode_fault_event(recover::Decoder *dec, FaultEvent *event);

void encode_fault_state(recover::Encoder *enc,
                        const FaultInjector::State &state);
bool decode_fault_state(recover::Decoder *dec,
                        FaultInjector::State *state);

}  // namespace serve
}  // namespace ef

#endif  // EF_SERVE_STATE_CODEC_H_

/**
 * @file
 * Admission verdicts of the streaming service front end.
 *
 * Every submission that reaches the service gets exactly one verdict —
 * including the ones the service refuses. Overload is an expected
 * operating regime, not an error: when the cluster cannot take more
 * deadline work the service says so deterministically (same arrival
 * stream + config → byte-identical verdict sequence) instead of
 * queueing unboundedly or timing out callers.
 */
#ifndef EF_SERVE_VERDICT_H_
#define EF_SERVE_VERDICT_H_

#include "common/types.h"

namespace ef {
namespace serve {

/** What happened to one submission. */
enum class ShedVerdict {
    kAdmitted,           ///< SLO job admitted with a feasible plan
    kAdmittedBestEffort, ///< best-effort job accepted (no guarantee)
    kDegraded,           ///< SLO deadline infeasible at current load;
                         ///< accepted as best-effort instead (opt-in)
    kShedQueueFull,      ///< rejected: admission queue at its watermark
                         ///< (or best-effort cap reached)
    kShedInfeasible,     ///< rejected: deadline unmeetable at current
                         ///< load and degradation is disabled
};

/** Stable lowercase name ("admitted", "shed-queue-full", ...). */
const char *shed_verdict_name(ShedVerdict verdict);

/** True for the verdicts that reject the submission outright. */
inline bool
is_shed(ShedVerdict verdict)
{
    return verdict == ShedVerdict::kShedQueueFull ||
           verdict == ShedVerdict::kShedInfeasible;
}

/** One submission's outcome, in decision order. */
struct Decision
{
    JobId id = kInvalidJob;
    Time submit_time = 0.0;
    /** When the verdict was made (>= submit_time; the gap is the
     *  decision latency a caller would observe). */
    Time decide_time = 0.0;
    ShedVerdict verdict = ShedVerdict::kAdmitted;
};

}  // namespace serve
}  // namespace ef

#endif  // EF_SERVE_VERDICT_H_

/**
 * @file
 * Synthetic open-loop submission stream for the service front end.
 *
 * The batch TraceGenerator materializes a whole trace up front; a
 * million-submission soak cannot afford that, and an always-on service
 * never sees "the whole trace" anyway. SyntheticStream produces
 * submissions one at a time — Poisson arrivals at a configurable base
 * rate, job shapes mirroring the trace generator's distributions
 * (Table 1 model/batch pool, power-of-two GPU skew, log-normal
 * durations, deadline tightness U[lo, hi]) — in O(1) memory, and is a
 * pure function of its seed.
 *
 * Arrival storms: with a FaultInjector attached, scripted
 * kArrivalStorm events multiply the arrival rate over their window
 * (overlapping storms compound), which is how the fault layer drives
 * overload through the service path.
 */
#ifndef EF_SERVE_STREAM_H_
#define EF_SERVE_STREAM_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "serve/service.h"
#include "workload/perf_model.h"

namespace ef {
namespace serve {

/** Knobs of the synthetic stream. */
struct StreamConfig
{
    TopologySpec topology;

    /** Base arrival rate, jobs per simulated second (pre-storm). */
    double arrival_rate = 0.01;

    /** Log-normal duration parameters (of the underlying normal). */
    double duration_log_mean = 8.3;
    double duration_log_sigma = 1.2;
    double min_duration_s = 300.0;
    double max_duration_s = 3.0 * kDay;

    /** Weights for requested GPU counts 1, 2, 4, 8, 16, 32, ... */
    std::vector<double> gpu_size_weights = {0.30, 0.15, 0.17, 0.25,
                                            0.09, 0.04};

    /** Deadline tightness range (paper: U[0.5, 1.5]). */
    double tightness_lo = 0.5;
    double tightness_hi = 1.5;

    /** Fraction of submissions without a deadline. */
    double best_effort_fraction = 0.1;

    std::uint64_t seed = 1;
};

/** Generates submissions on demand; deterministic in the seed. */
class SyntheticStream
{
  public:
    /** @p faults may be null (no storms); borrowed. */
    explicit SyntheticStream(StreamConfig config,
                             const FaultInjector *faults = nullptr);

    /**
     * The next submission. Advances the stream clock by an exponential
     * interarrival whose rate is arrival_rate times the storm
     * multiplier in effect at the current clock.
     */
    Submission next();

    /** Stream clock: the submit time of the last produced job. */
    Time now() const { return now_; }

    /** Jobs produced so far (also the next job id). */
    std::uint64_t produced() const { return produced_; }

  private:
    const ScalingCurve &curve_for(DnnModel model, int global_batch);

    StreamConfig config_;
    const FaultInjector *faults_;
    Topology topology_;
    PerfModel perf_;
    Rng rng_;
    std::vector<std::pair<DnnModel, int>> pool_;
    /** Curves per (model, batch): the pool is small, jobs are many. */
    std::map<std::pair<int, int>, ScalingCurve> curves_;
    Time now_ = 0.0;
    std::uint64_t produced_ = 0;
};

}  // namespace serve
}  // namespace ef

#endif  // EF_SERVE_STREAM_H_

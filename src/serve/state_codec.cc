/** @file See state_codec.h. */
#include "serve/state_codec.h"

#include <cstdint>

#include "workload/model_zoo.h"

namespace ef {
namespace serve {

void
encode_job_spec(recover::Encoder *enc, const JobSpec &spec)
{
    enc->i64(spec.id);
    enc->str(spec.name);
    enc->str(spec.user);
    enc->u32(static_cast<std::uint32_t>(spec.model));
    enc->i64(spec.global_batch);
    enc->i64(spec.iterations);
    enc->f64(spec.submit_time);
    enc->f64(spec.deadline);
    enc->u8(static_cast<std::uint8_t>(spec.kind));
    enc->i64(spec.requested_gpus);
}

bool
decode_job_spec(recover::Decoder *dec, JobSpec *spec)
{
    std::int64_t id = 0;
    std::string name;
    std::string user;
    std::uint32_t model = 0;
    std::int64_t global_batch = 0;
    std::int64_t iterations = 0;
    double submit_time = 0.0;
    double deadline = 0.0;
    std::uint8_t kind = 0;
    std::int64_t requested_gpus = 0;
    dec->i64(&id);
    dec->str(&name);
    dec->str(&user);
    dec->u32(&model);
    dec->i64(&global_batch);
    dec->i64(&iterations);
    dec->f64(&submit_time);
    dec->f64(&deadline);
    dec->u8(&kind);
    dec->i64(&requested_gpus);
    if (!dec->ok())
        return false;
    if (model >= static_cast<std::uint32_t>(kNumModels) ||
        kind > static_cast<std::uint8_t>(JobKind::kBestEffort)) {
        dec->fail();
        return false;
    }
    spec->id = static_cast<JobId>(id);
    spec->name = std::move(name);
    spec->user = std::move(user);
    spec->model = static_cast<DnnModel>(model);
    spec->global_batch = static_cast<int>(global_batch);
    spec->iterations = iterations;
    spec->submit_time = submit_time;
    spec->deadline = deadline;
    spec->kind = static_cast<JobKind>(kind);
    spec->requested_gpus = static_cast<GpuCount>(requested_gpus);
    return true;
}

void
encode_curve(recover::Encoder *enc, const ScalingCurve &curve)
{
    const std::vector<double> &table = curve.table();
    enc->u64(table.size());
    for (double v : table)
        enc->f64(v);
}

bool
decode_curve(recover::Decoder *dec, ScalingCurve *curve)
{
    std::uint64_t n = 0;
    if (!dec->count(&n, 8))
        return false;
    std::vector<double> table(static_cast<std::size_t>(n));
    for (double &v : table)
        dec->f64(&v);
    if (!dec->ok())
        return false;
    if (table.empty()) {
        *curve = ScalingCurve{};
        return true;
    }
    // Reject anything that would trip from_pow2_table's EF_CHECKs
    // (negative/NaN entries, no feasible count, a zero inside the
    // valid region, oversized tables): corruption must surface as a
    // typed error, never an abort.
    if (table.size() >= 256) {
        dec->fail();
        return false;
    }
    std::size_t first = table.size();
    for (std::size_t i = 0; i < table.size(); ++i) {
        double v = table[i];
        if (v < 0.0 || v != v) {
            dec->fail();
            return false;
        }
        if (v > 0.0 && first == table.size())
            first = i;
        // ef-lint: allow(float-eq: exact 0.0 is the absent sentinel)
        if (v == 0.0 && first < table.size()) {
            dec->fail();
            return false;
        }
    }
    if (first == table.size()) {
        dec->fail();
        return false;
    }
    *curve = ScalingCurve::from_pow2_table(std::move(table),
                                           /*enforce_concave=*/false);
    return true;
}

void
encode_step_series(recover::Encoder *enc, const StepSeries &series)
{
    const std::vector<double> &times = series.times();
    const std::vector<double> &values = series.values();
    enc->u64(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
        enc->f64(times[i]);
        enc->f64(values[i]);
    }
}

bool
decode_step_series(recover::Decoder *dec, StepSeries *series)
{
    std::uint64_t n = 0;
    if (!dec->count(&n, 16))
        return false;
    StepSeries out;
    double prev_time = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        double time = 0.0;
        double value = 0.0;
        dec->f64(&time);
        dec->f64(&value);
        if (!dec->ok())
            return false;
        // Storage is canonical: strictly increasing times. Anything
        // else would abort inside record(); reject it here instead.
        if (i > 0 && !(time > prev_time)) {
            dec->fail();
            return false;
        }
        prev_time = time;
        out.record(time, value);
    }
    *series = std::move(out);
    return true;
}

void
encode_fault_event(recover::Encoder *enc, const FaultEvent &event)
{
    enc->f64(event.time);
    enc->u8(static_cast<std::uint8_t>(event.type));
    enc->i64(event.target);
    enc->f64(event.duration_s);
    enc->f64(event.magnitude);
}

bool
decode_fault_event(recover::Decoder *dec, FaultEvent *event)
{
    double time = 0.0;
    std::uint8_t type = 0;
    std::int64_t target = 0;
    double duration = 0.0;
    double magnitude = 0.0;
    dec->f64(&time);
    dec->u8(&type);
    dec->i64(&target);
    dec->f64(&duration);
    dec->f64(&magnitude);
    if (!dec->ok())
        return false;
    if (type > static_cast<std::uint8_t>(FaultType::kSchedCrash)) {
        dec->fail();
        return false;
    }
    event->time = time;
    event->type = static_cast<FaultType>(type);
    event->target = target;
    event->duration_s = duration;
    event->magnitude = magnitude;
    return true;
}

void
encode_fault_state(recover::Encoder *enc,
                   const FaultInjector::State &state)
{
    enc->u64(state.streams.size());
    for (const FaultInjector::State::Stream &stream : state.streams) {
        enc->str(stream.engine);
        enc->u64(stream.draws);
        enc->u64(stream.forks);
    }
    enc->u64(state.armed_rpc.size());
    for (const FaultEvent &event : state.armed_rpc)
        encode_fault_event(enc, event);
    enc->u64(state.armed_ckpt.size());
    for (const FaultEvent &event : state.armed_ckpt)
        encode_fault_event(enc, event);
}

bool
decode_fault_state(recover::Decoder *dec, FaultInjector::State *state)
{
    FaultInjector::State out;
    std::uint64_t n = 0;
    if (!dec->count(&n, 24))
        return false;
    out.streams.resize(static_cast<std::size_t>(n));
    for (FaultInjector::State::Stream &stream : out.streams) {
        dec->str(&stream.engine);
        dec->u64(&stream.draws);
        dec->u64(&stream.forks);
    }
    if (!dec->count(&n, 33))
        return false;
    out.armed_rpc.resize(static_cast<std::size_t>(n));
    for (FaultEvent &event : out.armed_rpc) {
        if (!decode_fault_event(dec, &event))
            return false;
    }
    if (!dec->count(&n, 33))
        return false;
    out.armed_ckpt.resize(static_cast<std::size_t>(n));
    for (FaultEvent &event : out.armed_ckpt) {
        if (!decode_fault_event(dec, &event))
            return false;
    }
    if (!dec->ok())
        return false;
    *state = std::move(out);
    return true;
}

}  // namespace serve
}  // namespace ef

#include "serve/stream.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"
#include "fault/fault.h"
#include "workload/model_zoo.h"
#include "workload/trace.h"

namespace ef {
namespace serve {

SyntheticStream::SyntheticStream(StreamConfig config,
                                 const FaultInjector *faults)
    : config_(std::move(config)),
      faults_(faults),
      topology_(config_.topology),
      perf_(&topology_),
      rng_(config_.seed)
{
    EF_FATAL_IF(config_.arrival_rate <= 0.0,
                "stream needs arrival_rate > 0");
    // The Table 1 (model, batch) pool, flattened like the trace
    // generator samples it.
    for (DnnModel model : all_models()) {
        for (int batch : model_profile(model).batch_sizes)
            pool_.emplace_back(model, batch);
    }
}

const ScalingCurve &
SyntheticStream::curve_for(DnnModel model, int global_batch)
{
    const auto key =
        std::make_pair(static_cast<int>(model), global_batch);
    auto it = curves_.find(key);
    if (it == curves_.end()) {
        std::vector<double> table = perf_.compact_pow2_throughputs(
            model, global_batch, topology_.total_gpus());
        it = curves_
                 .emplace(key,
                          ScalingCurve::from_pow2_table(std::move(table)))
                 .first;
    }
    return it->second;
}

Submission
SyntheticStream::next()
{
    // Interarrival at the stormed rate in effect *now*; a storm
    // starting mid-gap takes effect from the next arrival, which keeps
    // the stream a pure function of (seed, script).
    double rate = config_.arrival_rate;
    if (faults_ != nullptr)
        rate *= faults_->arrival_rate_multiplier(now_);
    now_ += rng_.exponential(rate);

    Submission submission;
    JobSpec &job = submission.spec;
    job.id = static_cast<JobId>(produced_++);
    job.submit_time = now_;
    const auto idx = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(pool_.size()) - 1));
    job.model = pool_[idx].first;
    job.global_batch = pool_[idx].second;
    // Names and users stay empty: at soak scale (millions of
    // submissions) per-job strings are the dominant allocation.

    const GpuCount lo = perf_.min_workers(job.model, job.global_batch);
    const GpuCount hi = perf_.max_workers(job.model, job.global_batch,
                                          topology_.total_gpus());
    const auto size_idx = rng_.weighted_index(config_.gpu_size_weights);
    job.requested_gpus =
        std::clamp(GpuCount(1) << size_idx, lo, hi);

    const double duration =
        clamp(rng_.log_normal(config_.duration_log_mean,
                              config_.duration_log_sigma),
              config_.min_duration_s, config_.max_duration_s);
    job.iterations = iterations_for_duration(perf_, job, duration);

    if (rng_.flip(config_.best_effort_fraction)) {
        job.kind = JobKind::kBestEffort;
        job.deadline = kTimeInfinity;
    } else {
        job.kind = JobKind::kSlo;
        const double tightness = rng_.uniform_real(
            config_.tightness_lo, config_.tightness_hi);
        job.deadline =
            now_ + tightness * standalone_duration(perf_, job);
    }

    submission.curve = curve_for(job.model, job.global_batch);
    return submission;
}

}  // namespace serve
}  // namespace ef

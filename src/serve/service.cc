#include "serve/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "cluster/shard.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "core/allocator.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recover/codec.h"
#include "sched/planning_util.h"
#include "serve/state_codec.h"

namespace ef {
namespace serve {
namespace {

/** Decision-latency histogram edges (seconds). Queue-full sheds are
 *  decided synchronously (latency 0); queued verdicts wait up to the
 *  starvation horizon, so the edges are dense in that range. */
const std::vector<double> &
latency_edges()
{
    static const std::vector<double> kEdges = {
        0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
        20.0,  30.0, 60.0, 120.0, 300.0};
    return kEdges;
}

const char *
verdict_counter(ShedVerdict verdict)
{
    switch (verdict) {
      case ShedVerdict::kAdmitted:
        return "serve.verdict.admitted";
      case ShedVerdict::kAdmittedBestEffort:
        return "serve.verdict.admitted_best_effort";
      case ShedVerdict::kDegraded:
        return "serve.verdict.degraded";
      case ShedVerdict::kShedQueueFull:
        return "serve.verdict.shed_queue_full";
      case ShedVerdict::kShedInfeasible:
        return "serve.verdict.shed_infeasible";
    }
    return "serve.verdict.unknown";
}

}  // namespace

Service::Service(ServiceConfig config, FaultInjector *faults)
    : config_(config),
      faults_(faults),
      governor_(config.governor)
{
    EF_FATAL_IF(config_.total_gpus <= 0, "service needs total_gpus > 0");
    EF_FATAL_IF(config_.slot_seconds <= 0.0,
                "service needs slot_seconds > 0");
    EF_FATAL_IF(config_.queue_watermark < 1,
                "service needs queue_watermark >= 1");
    planner_.total_gpus = config_.total_gpus;
    planner_.slot_seconds = config_.slot_seconds;
    planner_.direction = config_.direction;
    planner_.max_slots = config_.max_slots;
    if (config_.planner_shards > 0) {
        // Shard along pod boundaries of the canonical topology for
        // this GPU total (DESIGN.md §10). Purely an execution
        // strategy: every round commits bit-identical state.
        sharded_ = true;
        concurrency_.shard_gpus = shard_capacities(extract_pod_shards(
            config_.total_gpus, config_.planner_shards));
        concurrency_.shards =
            static_cast<int>(concurrency_.shard_gpus.size());
        if (config_.planner_threads > 1) {
            pool_ = std::make_unique<ThreadPool>(config_.planner_threads);
            concurrency_.pool = pool_.get();
        }
    }
}

void
Service::submit(Submission submission)
{
    EF_FATAL_IF(submission.spec.submit_time < now_,
                "service submissions must arrive in time order (got "
                    << submission.spec.submit_time << " at clock "
                    << now_ << ")");
    if (durable_ != nullptr) {
        // The submission is durable before any of its effects: a crash
        // after this point replays it; a crash before it never saw it.
        recover::Encoder body;
        encode_job_spec(&body, submission.spec);
        encode_curve(&body, submission.curve);
        journal_append(recover::RecordKind::kSubmission, body,
                       /*sync=*/true);
    }
    advance_internal(submission.spec.submit_time);

    if (faults_ != nullptr) {
        const int forced = faults_->take_scripted_rpc_drops(
            submission.spec.id, now_);
        if (forced > 0 || faults_->rpc_attempt_lost()) {
            // The submission RPC never reached the service: no verdict,
            // no queue slot. A real client would retry; the stream
            // moves on (the drop is part of the deterministic record).
            ++stats_.rpc_dropped;
            obs::count("serve.rpc_dropped");
            maybe_snapshot();
            return;
        }
    }

    if (pending_.size() >= config_.queue_watermark) {
        // Synchronous backpressure: O(1), no planning work, decided at
        // submission time.
        decide(submission, now_, ShedVerdict::kShedQueueFull);
        maybe_snapshot();
        return;
    }
    pending_.push_back(std::move(submission));
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, pending_.size());
    obs::gauge_set("serve.queue_depth",
                   static_cast<double>(pending_.size()));
    if (pending_.size() == 1)
        arm();
    maybe_snapshot();
}

void
Service::advance_to(Time t)
{
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.f64(t);
        body.u8(0);  // external advance (1 = finish)
        journal_append(recover::RecordKind::kAdvance, body,
                       /*sync=*/false);
    }
    advance_internal(t);
    maybe_snapshot();
}

void
Service::advance_internal(Time t)
{
    EF_FATAL_IF(t < now_, "service clock cannot go backwards (to "
                              << t << " from " << now_ << ")");
    while (!pending_.empty() && next_due_ <= t) {
        now_ = std::max(now_, next_due_);
        run_round(now_);
    }
    now_ = std::max(now_, t);
}

void
Service::finish()
{
    if (durable_ != nullptr) {
        recover::Encoder body;
        body.f64(now_);
        body.u8(1);
        journal_append(recover::RecordKind::kAdvance, body,
                       /*sync=*/false);
    }
    // At most two rounds: the first may be abandoned by the watchdog,
    // the escalated retry always commits and drains the queue.
    if (!pending_.empty())
        run_round(now_);
    if (!pending_.empty())
        run_round(now_);
    EF_CHECK(pending_.empty());
    maybe_snapshot();
}

void
Service::arm()
{
    if (pending_.empty()) {
        next_due_ = kTimeInfinity;
        return;
    }
    // Token-funded round when the bucket allows it; otherwise forced
    // at the oldest submission's starvation horizon, whichever is
    // earlier.
    const Time horizon_due = pending_.front().spec.submit_time +
                             config_.governor.starvation_horizon_s;
    next_due_ = std::max(
        now_, std::min(governor_.next_eligible(now_), horizon_due));
}

void
Service::decide(const Submission &submission, Time at,
                ShedVerdict verdict)
{
    bool deliver = true;
    if (replaying()) {
        if (replay_verdict_next_ < replay_verdicts_.size()) {
            // This verdict reached the journal before the crash, so
            // the caller already observed it: verify the replay
            // reproduced it and suppress the callback (exactly-once).
            const ReplayVerdict &want =
                replay_verdicts_[replay_verdict_next_];
            EF_FATAL_IF(
                want.id != submission.spec.id ||
                    want.verdict != static_cast<std::uint8_t>(verdict),
                "recovery divergence: journaled verdict "
                    << replay_verdict_next_ << " was (job " << want.id
                    << ", " << static_cast<int>(want.verdict)
                    << ") but the replay produced (job "
                    << submission.spec.id << ", "
                    << static_cast<int>(verdict) << ")");
            ++replay_verdict_next_;
            deliver = false;
        }
        // Otherwise the crash hit between the submission record and
        // its verdict: the caller never saw one, deliver it now.
    } else if (durable_ != nullptr) {
        // Verdict is durable before the caller can observe it, so a
        // post-crash replay knows not to re-issue it.
        recover::Encoder body;
        body.i64(submission.spec.id);
        body.u8(static_cast<std::uint8_t>(verdict));
        body.f64(at);
        journal_append(recover::RecordKind::kVerdict, body,
                       /*sync=*/true);
    }
    ++stats_.submitted;
    switch (verdict) {
      case ShedVerdict::kAdmitted:
        ++stats_.admitted;
        break;
      case ShedVerdict::kAdmittedBestEffort:
        ++stats_.admitted_best_effort;
        break;
      case ShedVerdict::kDegraded:
        ++stats_.degraded;
        break;
      case ShedVerdict::kShedQueueFull:
        ++stats_.shed_queue_full;
        break;
      case ShedVerdict::kShedInfeasible:
        ++stats_.shed_infeasible;
        break;
    }
    obs::count(verdict_counter(verdict));
    obs::observe("serve.decision_latency_s", latency_edges(),
                 at - submission.spec.submit_time);
    if (obs::tracing() && is_shed(verdict)) {
        obs::TraceEvent event;
        event.time = at;
        event.kind = obs::EventKind::kServeShed;
        event.job = submission.spec.id;
        event.a = static_cast<std::int64_t>(verdict);
        event.b = static_cast<std::int64_t>(pending_.size());
        obs::emit(event);
    }
    if (deliver && on_decision_) {
        on_decision_(Decision{submission.spec.id,
                              submission.spec.submit_time, at, verdict});
    }
}

void
Service::retire(Time t)
{
    const Time dt = t - last_round_;
    if (dt <= 0.0)
        return;
    auto sweep = [&](std::map<JobId, Active> &jobs) {
        std::vector<JobId> done;
        for (auto &[id, active] : jobs) {
            auto it = gpus_now_.find(id);
            const GpuCount gpus =
                it == gpus_now_.end() ? 0 : it->second;
            if (gpus <= 0)
                continue;  // suspended this interval
            const double tpt = active.curve.throughput(gpus);
            if (tpt <= 0.0)
                continue;
            const double progress = tpt * dt;
            if (progress + 1e-9 < active.remaining_iterations) {
                active.remaining_iterations -= progress;
                continue;
            }
            const Time finish =
                last_round_ + active.remaining_iterations / tpt;
            ++stats_.finished;
            obs::count("serve.finished");
            if (!is_unbounded(active.deadline) &&
                finish > active.deadline + 1e-6) {
                ++stats_.deadline_misses;
                obs::count("serve.deadline_misses");
            }
            done.push_back(id);
        }
        for (JobId id : done) {
            jobs.erase(id);
            gpus_now_.erase(id);
        }
    };
    sweep(slo_);
    sweep(best_effort_);
}

void
Service::run_round(Time t)
{
    // Fluid progress since the last committed round, then completion
    // retirement, happens before any replanning sees the job set.
    // last_round_ must advance immediately: a watchdog-abandoned
    // round retries at the same t, and the retry's retire(t) would
    // otherwise re-apply the same interval's progress.
    retire(t);
    last_round_ = t;

    const PlanningMargin margin{config_.admission_margin,
                                config_.overhead_allowance_s};
    std::vector<PlanningJob> slo;
    slo.reserve(slo_.size());
    for (const auto &[id, active] : slo_) {
        PlanningJob job;
        job.id = id;
        job.curve = active.curve;
        job.remaining_iterations =
            margin.inflate(active.remaining_iterations, active.curve);
        job.deadline = active.deadline;
        job.soft = active.soft;
        slo.push_back(std::move(job));
    }

    std::uint64_t cost = 0;
    ShardRoundStats shard_stats;
    MinShareRefresh refresh =
        sharded_ ? refresh_min_shares_sharded(planner_, t, std::move(slo),
                                              &replan_failures_, false,
                                              &cost, concurrency_,
                                              &shard_stats)
                 : refresh_min_shares(planner_, t, std::move(slo),
                                      &replan_failures_, false, &cost);
    stats_.planning_cost += cost;
    if (config_.watchdog_budget > 0 && !escalated_ &&
        cost > config_.watchdog_budget) {
        // Watchdog: this refresh blew the planning budget. Abandon it,
        // keep the last committed plans and allocations, and retry
        // immediately with the budget lifted, draining the queue in
        // one batch. Cost units are deterministic, so the timeout
        // replays identically.
        ++stats_.replan_timeouts;
        obs::count("serve.replan_timeouts");
        if (obs::tracing()) {
            obs::TraceEvent event;
            event.time = t;
            event.kind = obs::EventKind::kServeTimeout;
            event.a = static_cast<std::int64_t>(cost);
            event.b =
                static_cast<std::int64_t>(config_.watchdog_budget);
            obs::emit(event);
        }
        escalated_ = true;
        next_due_ = t;
        return;
    }
    escalated_ = false;

    // Jobs the refresh had to park lose their guarantee but keep
    // their progress: they continue as best-effort.
    for (const PlanningJob &parked : refresh.parked) {
        auto it = slo_.find(parked.id);
        if (it == slo_.end())
            continue;
        Active moved = it->second;
        moved.deadline = kTimeInfinity;
        moved.soft = false;
        best_effort_.emplace(parked.id, std::move(moved));
        slo_.erase(it);
        ++stats_.demotions;
        obs::count("serve.demotions");
    }

    // Residual availability after the refreshed minimum shares; grown
    // lazily to whatever horizon a candidate needs.
    std::map<JobId, SlotPlan> shares = std::move(refresh.min_shares);
    std::vector<GpuCount> available;
    auto ensure_slots = [&](int horizon) {
        if (static_cast<int>(available.size()) < horizon) {
            available.resize(static_cast<std::size_t>(horizon),
                             config_.total_gpus);
        }
    };
    for (const auto &[id, plan] : shares) {
        ensure_slots(plan.horizon());
        for (int s = 0; s < plan.horizon(); ++s) {
            GpuCount &a = available[static_cast<std::size_t>(s)];
            a -= plan.at(s);
            EF_CHECK_MSG(a >= 0, "service over-reserved slot " << s);
        }
    }

    const bool token = governor_.try_acquire(t);
    const std::size_t batch = pending_.size();
    std::vector<PlanningJob> alloc_slo = std::move(refresh.slo);
    std::uint64_t drain_cost = 0;
    while (!pending_.empty()) {
        Submission sub = std::move(pending_.front());
        pending_.pop_front();
        const JobSpec &spec = sub.spec;
        if (spec.is_best_effort()) {
            if (best_effort_.size() >= config_.max_active_best_effort) {
                decide(sub, t, ShedVerdict::kShedQueueFull);
                continue;
            }
            best_effort_.emplace(
                spec.id,
                Active{sub.curve,
                       static_cast<double>(spec.iterations),
                       kTimeInfinity, false});
            decide(sub, t, ShedVerdict::kAdmittedBestEffort);
            continue;
        }
        const PlanHorizon d =
            plan_horizon(t, spec.deadline, planner_.slot_seconds,
                         planner_.max_slots);
        ensure_slots(d.slots);
        const double inflated = margin.inflate(
            static_cast<double>(spec.iterations), sub.curve);
        auto fill = progressive_fill(sub.curve, inflated, available, d,
                                     planner_, /*start_slot=*/0,
                                     &drain_cost);
        if (fill.has_value()) {
            for (int s = 0; s < fill->horizon(); ++s) {
                available[static_cast<std::size_t>(s)] -= fill->at(s);
            }
            PlanningJob job;
            job.id = spec.id;
            job.curve = sub.curve;
            job.remaining_iterations = inflated;
            job.deadline = spec.deadline;
            job.soft = spec.has_soft_deadline();
            alloc_slo.push_back(std::move(job));
            shares.emplace(spec.id, std::move(*fill));
            slo_.emplace(spec.id,
                         Active{std::move(sub.curve),
                                static_cast<double>(spec.iterations),
                                spec.deadline,
                                spec.has_soft_deadline()});
            decide(sub, t, ShedVerdict::kAdmitted);
        } else if (config_.degrade_infeasible &&
                   best_effort_.size() <
                       config_.max_active_best_effort) {
            best_effort_.emplace(
                spec.id,
                Active{std::move(sub.curve),
                       static_cast<double>(spec.iterations),
                       kTimeInfinity, false});
            decide(sub, t, ShedVerdict::kDegraded);
        } else {
            decide(sub, t, ShedVerdict::kShedInfeasible);
        }
    }
    stats_.planning_cost += drain_cost;

    std::vector<PlanningJob> best_effort;
    best_effort.reserve(best_effort_.size());
    for (const auto &[id, active] : best_effort_) {
        PlanningJob job;
        job.id = id;
        job.curve = active.curve;
        job.remaining_iterations = active.remaining_iterations;
        job.deadline = kTimeInfinity;
        best_effort.push_back(std::move(job));
    }
    AllocationOutcome outcome =
        sharded_ ? run_allocation_sharded(planner_, t, alloc_slo, shares,
                                          best_effort, concurrency_,
                                          &shard_stats)
                 : run_allocation(planner_, t, alloc_slo, shares,
                                  best_effort);
    gpus_now_ = std::move(outcome.gpus_now);
    if (sharded_)
        emit_shard_round(t, shard_stats);

    ++stats_.rounds;
    if (!token)
        ++stats_.rounds_forced;
    obs::count("serve.rounds");
    if (!token)
        obs::count("serve.rounds_forced");
    obs::gauge_set("serve.queue_depth", 0.0);
    if (obs::tracing()) {
        obs::TraceEvent event;
        event.time = t;
        event.kind = obs::EventKind::kServeRound;
        event.a = static_cast<std::int64_t>(batch);
        event.b = token ? 0 : 1;
        obs::emit(event);
    }
    fold_round_hash(t, batch, !token);
    if (replaying() && replay_round_next_ < replay_rounds_.size()) {
        // Rounds beyond the journaled commits are new work (their
        // commit record was lost to the torn tail); only journaled
        // rounds are verified.
        const auto &want = replay_rounds_[replay_round_next_];
        EF_FATAL_IF(want.first != stats_.rounds ||
                        want.second != hash_,
                    "recovery divergence at service round "
                        << stats_.rounds << ": journaled (round "
                        << want.first << ", hash " << std::hex
                        << want.second << ") vs replayed hash "
                        << hash_ << std::dec);
        ++replay_round_next_;
        obs::count("recover.replay_rounds");
    } else if (durable_ != nullptr) {
        recover::Encoder body;
        body.u64(stats_.rounds);
        body.f64(t);
        body.u64(hash_);
        journal_append(recover::RecordKind::kRoundCommit, body,
                       /*sync=*/true);
        // The cadence snapshot is deferred to the end of the public
        // entry point: a round committed mid-submit() would otherwise
        // truncate away the in-flight submission's journal record
        // before its effects reach the snapshotted state.
        if (stats_.rounds - snapshot_round_ >= snapshot_every_)
            snapshot_pending_ = true;
    }
    arm();
}

void
Service::maybe_snapshot()
{
    if (durable_ == nullptr || !snapshot_pending_)
        return;
    snapshot_pending_ = false;
    recover::Encoder enc;
    encode_state(&enc);
    recover::Status st = durable_->write_snapshot(enc.data());
    EF_FATAL_IF(!st.ok(), "durability: service snapshot failed: "
                              << st.to_string());
    snapshot_round_ = stats_.rounds;
    obs::count("recover.snapshots");
    obs::count("recover.snapshot_bytes",
               static_cast<std::uint64_t>(enc.size()));
    obs::gauge_set("recover.snapshot_bytes_last",
                   static_cast<double>(enc.size()));
}

void
Service::fold_round_hash(Time t, std::size_t batch, bool forced)
{
    Fnv1a h;
    h.u64(hash_);
    h.f64(t);
    h.u64(batch);
    h.u64(forced ? 1 : 0);
    h.u64(stats_.submitted);
    h.u64(stats_.admitted);
    h.u64(stats_.admitted_best_effort);
    h.u64(stats_.degraded);
    h.u64(stats_.shed_queue_full);
    h.u64(stats_.shed_infeasible);
    h.u64(stats_.rpc_dropped);
    h.u64(stats_.replan_timeouts);
    h.u64(stats_.finished);
    h.u64(stats_.deadline_misses);
    h.u64(stats_.demotions);
    for (const auto &[id, active] : slo_) {
        h.i64(id);
        h.f64(active.remaining_iterations);
        h.f64(active.deadline);
    }
    for (const auto &[id, active] : best_effort_) {
        h.i64(id);
        h.f64(active.remaining_iterations);
    }
    for (const auto &[id, gpus] : gpus_now_) {
        h.i64(id);
        h.i64(static_cast<std::int64_t>(gpus));
    }
    h.u64(governor_.fingerprint());
    if (faults_ != nullptr)
        h.u64(faults_->state_fingerprint());
    hash_ = h.digest();
}

void
Service::journal_append(recover::RecordKind kind,
                        const recover::Encoder &enc, bool sync)
{
    recover::Status st = durable_->append(kind, enc.data());
    EF_FATAL_IF(!st.ok(), "durability: service journal append "
                          "failed: "
                              << st.to_string());
    if (sync) {
        st = durable_->commit();
        EF_FATAL_IF(!st.ok(), "durability: service journal commit "
                              "failed: "
                                  << st.to_string());
    }
    obs::count("recover.journal_records");
}

std::uint64_t
Service::config_fingerprint() const
{
    // Knobs that change decisions are load-bearing; execution-strategy
    // knobs (planner_shards/threads) are deliberately excluded so a
    // journal can be recovered under a different shard setting —
    // rounds are bit-identical across them by construction.
    Fnv1a h;
    h.str("ef.serve.v1");
    h.i64(static_cast<std::int64_t>(config_.total_gpus));
    h.f64(config_.slot_seconds);
    h.i64(config_.max_slots);
    h.u64(static_cast<std::uint64_t>(config_.direction));
    h.f64(config_.admission_margin);
    h.f64(config_.overhead_allowance_s);
    h.u64(config_.queue_watermark);
    h.f64(config_.governor.rounds_per_second);
    h.f64(config_.governor.burst);
    h.f64(config_.governor.starvation_horizon_s);
    h.u64(config_.degrade_infeasible ? 1 : 0);
    h.u64(config_.max_active_best_effort);
    h.u64(config_.watchdog_budget);
    return h.digest();
}

void
Service::encode_state(recover::Encoder *enc) const
{
    enc->u64(config_fingerprint());
    enc->f64(now_);
    enc->f64(last_round_);
    enc->f64(next_due_);
    enc->boolean(escalated_);
    enc->i64(replan_failures_);
    enc->u64(pending_.size());
    for (const Submission &sub : pending_) {
        encode_job_spec(enc, sub.spec);
        encode_curve(enc, sub.curve);
    }
    auto put_active = [&](const std::map<JobId, Active> &jobs) {
        enc->u64(jobs.size());
        for (const auto &[id, active] : jobs) {
            enc->i64(id);
            encode_curve(enc, active.curve);
            enc->f64(active.remaining_iterations);
            enc->f64(active.deadline);
            enc->boolean(active.soft);
        }
    };
    put_active(slo_);
    put_active(best_effort_);
    enc->u64(gpus_now_.size());
    for (const auto &[id, gpus] : gpus_now_) {
        enc->i64(id);
        enc->i64(static_cast<std::int64_t>(gpus));
    }
    enc->u64(stats_.submitted);
    enc->u64(stats_.rpc_dropped);
    enc->u64(stats_.admitted);
    enc->u64(stats_.admitted_best_effort);
    enc->u64(stats_.degraded);
    enc->u64(stats_.shed_queue_full);
    enc->u64(stats_.shed_infeasible);
    enc->u64(stats_.rounds);
    enc->u64(stats_.rounds_forced);
    enc->u64(stats_.replan_timeouts);
    enc->u64(stats_.planning_cost);
    enc->u64(stats_.finished);
    enc->u64(stats_.deadline_misses);
    enc->u64(stats_.demotions);
    enc->u64(stats_.max_queue_depth);
    enc->f64(governor_.tokens_raw());
    enc->f64(governor_.last_refill());
    enc->boolean(faults_ != nullptr);
    if (faults_ != nullptr)
        encode_fault_state(enc, faults_->capture_state());
    enc->u64(hash_);
}

recover::Status
Service::decode_state(recover::Decoder *dec)
{
    const recover::Status corrupt = recover::Status::error(
        recover::ErrorCode::kBadRecord,
        "service snapshot payload is malformed");
    std::uint64_t fingerprint = 0;
    dec->u64(&fingerprint);
    if (!dec->ok())
        return corrupt;
    if (fingerprint != config_fingerprint()) {
        return recover::Status::error(
            recover::ErrorCode::kStateMismatch,
            "snapshot was taken with a different service "
            "configuration");
    }
    dec->f64(&now_);
    dec->f64(&last_round_);
    dec->f64(&next_due_);
    dec->boolean(&escalated_);
    std::int64_t replan_failures = 0;
    dec->i64(&replan_failures);
    replan_failures_ = static_cast<int>(replan_failures);
    std::uint64_t n = 0;
    if (!dec->count(&n, 24))
        return corrupt;
    pending_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        Submission sub;
        if (!decode_job_spec(dec, &sub.spec) ||
            !decode_curve(dec, &sub.curve))
            return corrupt;
        pending_.push_back(std::move(sub));
    }
    auto get_active = [&](std::map<JobId, Active> *jobs)
        -> bool {
        std::uint64_t count = 0;
        if (!dec->count(&count, 33))
            return false;
        jobs->clear();
        JobId prev = -1;
        for (std::uint64_t i = 0; i < count; ++i) {
            std::int64_t id = 0;
            Active active;
            dec->i64(&id);
            if (!decode_curve(dec, &active.curve))
                return false;
            dec->f64(&active.remaining_iterations);
            dec->f64(&active.deadline);
            dec->boolean(&active.soft);
            if (!dec->ok() || id <= prev ||
                !(active.remaining_iterations >= 0.0))
                return false;
            prev = id;
            jobs->emplace(id, std::move(active));
        }
        return true;
    };
    if (!get_active(&slo_) || !get_active(&best_effort_))
        return corrupt;
    std::uint64_t allocs = 0;
    if (!dec->count(&allocs, 16))
        return corrupt;
    gpus_now_.clear();
    JobId prev = -1;
    for (std::uint64_t i = 0; i < allocs; ++i) {
        std::int64_t id = 0;
        std::int64_t gpus = 0;
        dec->i64(&id);
        dec->i64(&gpus);
        if (!dec->ok() || id <= prev || gpus < 0)
            return corrupt;
        prev = id;
        gpus_now_[id] = static_cast<GpuCount>(gpus);
    }
    dec->u64(&stats_.submitted);
    dec->u64(&stats_.rpc_dropped);
    dec->u64(&stats_.admitted);
    dec->u64(&stats_.admitted_best_effort);
    dec->u64(&stats_.degraded);
    dec->u64(&stats_.shed_queue_full);
    dec->u64(&stats_.shed_infeasible);
    dec->u64(&stats_.rounds);
    dec->u64(&stats_.rounds_forced);
    dec->u64(&stats_.replan_timeouts);
    dec->u64(&stats_.planning_cost);
    dec->u64(&stats_.finished);
    dec->u64(&stats_.deadline_misses);
    dec->u64(&stats_.demotions);
    std::uint64_t max_depth = 0;
    dec->u64(&max_depth);
    stats_.max_queue_depth = static_cast<std::size_t>(max_depth);
    double tokens = 0.0;
    double last_refill = 0.0;
    dec->f64(&tokens);
    dec->f64(&last_refill);
    bool has_faults = false;
    dec->boolean(&has_faults);
    if (!dec->ok())
        return corrupt;
    if (has_faults != (faults_ != nullptr)) {
        return recover::Status::error(
            recover::ErrorCode::kStateMismatch,
            "snapshot fault-injection mode does not match this "
            "service");
    }
    if (faults_ != nullptr) {
        FaultInjector::State state;
        if (!decode_fault_state(dec, &state))
            return corrupt;
        faults_->restore_state(state);
    }
    dec->u64(&hash_);
    if (!dec->ok() || !dec->empty())
        return corrupt;
    governor_.restore(tokens, last_refill);
    return recover::Status{};
}

recover::Status
Service::replay_tail(const recover::JournalContents &tail)
{
    replay_active_ = true;
    for (std::size_t i = 0; i < tail.records.size(); ++i) {
        const recover::JournalRecord &rec = tail.records[i];
        recover::Decoder dec(rec.body);
        const auto bad = [&](const char *what) {
            replay_active_ = false;
            return recover::Status::error(
                recover::ErrorCode::kBadRecord, what,
                static_cast<std::int64_t>(i));
        };
        switch (rec.kind) {
          case recover::RecordKind::kSubmission: {
            Submission sub;
            if (!decode_job_spec(&dec, &sub.spec) ||
                !decode_curve(&dec, &sub.curve) || !dec.empty())
                return bad("malformed service submission record");
            submit(std::move(sub));
            break;
          }
          case recover::RecordKind::kAdvance: {
            double t = 0.0;
            std::uint8_t mode = 0;
            dec.f64(&t);
            dec.u8(&mode);
            if (!dec.ok() || !dec.empty() || mode > 1)
                return bad("malformed service advance record");
            if (mode == 1)
                finish();
            else
                advance_internal(t);
            break;
          }
          case recover::RecordKind::kVerdict:
          case recover::RecordKind::kRoundCommit:
            break;  // pre-scanned into the replay cursors
          default:
            return bad("unknown service journal record kind");
        }
    }
    replay_active_ = false;
    if (replay_round_next_ < replay_rounds_.size() ||
        replay_verdict_next_ < replay_verdicts_.size()) {
        return recover::Status::error(
            recover::ErrorCode::kStateMismatch,
            "journal records effects the replay never reproduced");
    }
    return recover::Status{};
}

recover::Status
Service::bind_durability(const std::string &dir,
                         std::uint64_t snapshot_every, bool recover)
{
    EF_CHECK_MSG(durable_ == nullptr,
                 "service durability is already bound");
    EF_FATAL_IF(dir.empty(), "service durability needs a directory");
    EF_FATAL_IF(snapshot_every < 1,
                "service durability needs snapshot_every >= 1");
    snapshot_every_ = snapshot_every;
    std::uint64_t journal_valid_bytes = 0;
    if (recover) {
        std::string snapshot;
        recover::JournalContents tail;
        recover::Status st =
            recover::DurableLog::load(dir, &snapshot, &tail);
        if (!st.ok())
            return st;
        journal_valid_bytes = tail.valid_bytes;
        if (!tail.tail.ok()) {
            EF_INFO("service recovery: discarding torn journal tail ("
                    << tail.tail.to_string() << ")");
        }
        recover::Decoder dec(snapshot);
        st = decode_state(&dec);
        if (!st.ok())
            return st;
        // Pre-scan the tail: verdicts and round commits become the
        // verification cursors the replayed inputs must reproduce.
        replay_verdicts_.clear();
        replay_rounds_.clear();
        replay_verdict_next_ = 0;
        replay_round_next_ = 0;
        for (std::size_t i = 0; i < tail.records.size(); ++i) {
            const recover::JournalRecord &rec = tail.records[i];
            recover::Decoder scan(rec.body);
            if (rec.kind == recover::RecordKind::kVerdict) {
                ReplayVerdict v;
                std::int64_t id = 0;
                double at = 0.0;
                scan.i64(&id);
                scan.u8(&v.verdict);
                scan.f64(&at);
                if (!scan.ok() || !scan.empty()) {
                    return recover::Status::error(
                        recover::ErrorCode::kBadRecord,
                        "malformed service verdict record",
                        static_cast<std::int64_t>(i));
                }
                v.id = id;
                replay_verdicts_.push_back(v);
            } else if (rec.kind == recover::RecordKind::kRoundCommit) {
                std::uint64_t round = 0;
                double at = 0.0;
                std::uint64_t hash = 0;
                scan.u64(&round);
                scan.f64(&at);
                scan.u64(&hash);
                if (!scan.ok() || !scan.empty() ||
                    round != stats_.rounds + replay_rounds_.size() + 1) {
                    return recover::Status::error(
                        recover::ErrorCode::kBadRecord,
                        "malformed or non-contiguous service "
                        "round-commit record",
                        static_cast<std::int64_t>(i));
                }
                replay_rounds_.emplace_back(round, hash);
            }
        }
        if (obs::tracing()) {
            obs::TraceEvent event;
            event.time = now_;
            event.kind = obs::EventKind::kRecoveryBegin;
            event.a = static_cast<std::int64_t>(tail.records.size());
            event.b = static_cast<std::int64_t>(replay_rounds_.size());
            obs::emit(event);
        }
        st = replay_tail(tail);
        if (!st.ok())
            return st;
        if (obs::tracing()) {
            obs::TraceEvent event;
            event.time = now_;
            event.kind = obs::EventKind::kRecoveryEnd;
            event.a = static_cast<std::int64_t>(replay_round_next_);
            obs::emit(event);
        }
    }
    durable_ = std::make_unique<recover::DurableLog>();
    // On recovery, reopen the journal for *append* at its last valid
    // byte: the old snapshot + full journal stays a complete recovery
    // image until the fresh snapshot below atomically subsumes it. A
    // plain (truncating) open would leave a crash window in which the
    // replayed tail was lost.
    recover::Status st =
        recover ? durable_->open_existing(dir, journal_valid_bytes)
                : durable_->open(dir);
    if (!st.ok()) {
        durable_.reset();
        return st;
    }
    recover::Encoder enc;
    encode_state(&enc);
    st = durable_->write_snapshot(enc.data());
    if (!st.ok()) {
        durable_.reset();
        return st;
    }
    snapshot_round_ = stats_.rounds;
    obs::count("recover.snapshots");
    obs::count("recover.snapshot_bytes",
               static_cast<std::uint64_t>(enc.size()));
    obs::gauge_set("recover.snapshot_bytes_last",
                   static_cast<double>(enc.size()));
    return recover::Status{};
}

}  // namespace serve
}  // namespace ef

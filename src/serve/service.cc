#include "serve/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "cluster/shard.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "core/allocator.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/planning_util.h"

namespace ef {
namespace serve {
namespace {

/** Decision-latency histogram edges (seconds). Queue-full sheds are
 *  decided synchronously (latency 0); queued verdicts wait up to the
 *  starvation horizon, so the edges are dense in that range. */
const std::vector<double> &
latency_edges()
{
    static const std::vector<double> kEdges = {
        0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
        20.0,  30.0, 60.0, 120.0, 300.0};
    return kEdges;
}

const char *
verdict_counter(ShedVerdict verdict)
{
    switch (verdict) {
      case ShedVerdict::kAdmitted:
        return "serve.verdict.admitted";
      case ShedVerdict::kAdmittedBestEffort:
        return "serve.verdict.admitted_best_effort";
      case ShedVerdict::kDegraded:
        return "serve.verdict.degraded";
      case ShedVerdict::kShedQueueFull:
        return "serve.verdict.shed_queue_full";
      case ShedVerdict::kShedInfeasible:
        return "serve.verdict.shed_infeasible";
    }
    return "serve.verdict.unknown";
}

}  // namespace

Service::Service(ServiceConfig config, FaultInjector *faults)
    : config_(config),
      faults_(faults),
      governor_(config.governor)
{
    EF_FATAL_IF(config_.total_gpus <= 0, "service needs total_gpus > 0");
    EF_FATAL_IF(config_.slot_seconds <= 0.0,
                "service needs slot_seconds > 0");
    EF_FATAL_IF(config_.queue_watermark < 1,
                "service needs queue_watermark >= 1");
    planner_.total_gpus = config_.total_gpus;
    planner_.slot_seconds = config_.slot_seconds;
    planner_.direction = config_.direction;
    planner_.max_slots = config_.max_slots;
    if (config_.planner_shards > 0) {
        // Shard along pod boundaries of the canonical topology for
        // this GPU total (DESIGN.md §10). Purely an execution
        // strategy: every round commits bit-identical state.
        sharded_ = true;
        concurrency_.shard_gpus = shard_capacities(extract_pod_shards(
            config_.total_gpus, config_.planner_shards));
        concurrency_.shards =
            static_cast<int>(concurrency_.shard_gpus.size());
        if (config_.planner_threads > 1) {
            pool_ = std::make_unique<ThreadPool>(config_.planner_threads);
            concurrency_.pool = pool_.get();
        }
    }
}

void
Service::submit(Submission submission)
{
    EF_FATAL_IF(submission.spec.submit_time < now_,
                "service submissions must arrive in time order (got "
                    << submission.spec.submit_time << " at clock "
                    << now_ << ")");
    advance_to(submission.spec.submit_time);

    if (faults_ != nullptr) {
        const int forced = faults_->take_scripted_rpc_drops(
            submission.spec.id, now_);
        if (forced > 0 || faults_->rpc_attempt_lost()) {
            // The submission RPC never reached the service: no verdict,
            // no queue slot. A real client would retry; the stream
            // moves on (the drop is part of the deterministic record).
            ++stats_.rpc_dropped;
            obs::count("serve.rpc_dropped");
            return;
        }
    }

    if (pending_.size() >= config_.queue_watermark) {
        // Synchronous backpressure: O(1), no planning work, decided at
        // submission time.
        decide(submission, now_, ShedVerdict::kShedQueueFull);
        return;
    }
    pending_.push_back(std::move(submission));
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, pending_.size());
    obs::gauge_set("serve.queue_depth",
                   static_cast<double>(pending_.size()));
    if (pending_.size() == 1)
        arm();
}

void
Service::advance_to(Time t)
{
    EF_FATAL_IF(t < now_, "service clock cannot go backwards (to "
                              << t << " from " << now_ << ")");
    while (!pending_.empty() && next_due_ <= t) {
        now_ = std::max(now_, next_due_);
        run_round(now_);
    }
    now_ = std::max(now_, t);
}

void
Service::finish()
{
    // At most two rounds: the first may be abandoned by the watchdog,
    // the escalated retry always commits and drains the queue.
    if (!pending_.empty())
        run_round(now_);
    if (!pending_.empty())
        run_round(now_);
    EF_CHECK(pending_.empty());
}

void
Service::arm()
{
    if (pending_.empty()) {
        next_due_ = kTimeInfinity;
        return;
    }
    // Token-funded round when the bucket allows it; otherwise forced
    // at the oldest submission's starvation horizon, whichever is
    // earlier.
    const Time horizon_due = pending_.front().spec.submit_time +
                             config_.governor.starvation_horizon_s;
    next_due_ = std::max(
        now_, std::min(governor_.next_eligible(now_), horizon_due));
}

void
Service::decide(const Submission &submission, Time at,
                ShedVerdict verdict)
{
    ++stats_.submitted;
    switch (verdict) {
      case ShedVerdict::kAdmitted:
        ++stats_.admitted;
        break;
      case ShedVerdict::kAdmittedBestEffort:
        ++stats_.admitted_best_effort;
        break;
      case ShedVerdict::kDegraded:
        ++stats_.degraded;
        break;
      case ShedVerdict::kShedQueueFull:
        ++stats_.shed_queue_full;
        break;
      case ShedVerdict::kShedInfeasible:
        ++stats_.shed_infeasible;
        break;
    }
    obs::count(verdict_counter(verdict));
    obs::observe("serve.decision_latency_s", latency_edges(),
                 at - submission.spec.submit_time);
    if (obs::tracing() && is_shed(verdict)) {
        obs::TraceEvent event;
        event.time = at;
        event.kind = obs::EventKind::kServeShed;
        event.job = submission.spec.id;
        event.a = static_cast<std::int64_t>(verdict);
        event.b = static_cast<std::int64_t>(pending_.size());
        obs::emit(event);
    }
    if (on_decision_) {
        on_decision_(Decision{submission.spec.id,
                              submission.spec.submit_time, at, verdict});
    }
}

void
Service::retire(Time t)
{
    const Time dt = t - last_round_;
    if (dt <= 0.0)
        return;
    auto sweep = [&](std::map<JobId, Active> &jobs) {
        std::vector<JobId> done;
        for (auto &[id, active] : jobs) {
            auto it = gpus_now_.find(id);
            const GpuCount gpus =
                it == gpus_now_.end() ? 0 : it->second;
            if (gpus <= 0)
                continue;  // suspended this interval
            const double tpt = active.curve.throughput(gpus);
            if (tpt <= 0.0)
                continue;
            const double progress = tpt * dt;
            if (progress + 1e-9 < active.remaining_iterations) {
                active.remaining_iterations -= progress;
                continue;
            }
            const Time finish =
                last_round_ + active.remaining_iterations / tpt;
            ++stats_.finished;
            obs::count("serve.finished");
            if (!is_unbounded(active.deadline) &&
                finish > active.deadline + 1e-6) {
                ++stats_.deadline_misses;
                obs::count("serve.deadline_misses");
            }
            done.push_back(id);
        }
        for (JobId id : done) {
            jobs.erase(id);
            gpus_now_.erase(id);
        }
    };
    sweep(slo_);
    sweep(best_effort_);
}

void
Service::run_round(Time t)
{
    // Fluid progress since the last committed round, then completion
    // retirement, happens before any replanning sees the job set.
    // last_round_ must advance immediately: a watchdog-abandoned
    // round retries at the same t, and the retry's retire(t) would
    // otherwise re-apply the same interval's progress.
    retire(t);
    last_round_ = t;

    const PlanningMargin margin{config_.admission_margin,
                                config_.overhead_allowance_s};
    std::vector<PlanningJob> slo;
    slo.reserve(slo_.size());
    for (const auto &[id, active] : slo_) {
        PlanningJob job;
        job.id = id;
        job.curve = active.curve;
        job.remaining_iterations =
            margin.inflate(active.remaining_iterations, active.curve);
        job.deadline = active.deadline;
        job.soft = active.soft;
        slo.push_back(std::move(job));
    }

    std::uint64_t cost = 0;
    ShardRoundStats shard_stats;
    MinShareRefresh refresh =
        sharded_ ? refresh_min_shares_sharded(planner_, t, std::move(slo),
                                              &replan_failures_, false,
                                              &cost, concurrency_,
                                              &shard_stats)
                 : refresh_min_shares(planner_, t, std::move(slo),
                                      &replan_failures_, false, &cost);
    stats_.planning_cost += cost;
    if (config_.watchdog_budget > 0 && !escalated_ &&
        cost > config_.watchdog_budget) {
        // Watchdog: this refresh blew the planning budget. Abandon it,
        // keep the last committed plans and allocations, and retry
        // immediately with the budget lifted, draining the queue in
        // one batch. Cost units are deterministic, so the timeout
        // replays identically.
        ++stats_.replan_timeouts;
        obs::count("serve.replan_timeouts");
        if (obs::tracing()) {
            obs::TraceEvent event;
            event.time = t;
            event.kind = obs::EventKind::kServeTimeout;
            event.a = static_cast<std::int64_t>(cost);
            event.b =
                static_cast<std::int64_t>(config_.watchdog_budget);
            obs::emit(event);
        }
        escalated_ = true;
        next_due_ = t;
        return;
    }
    escalated_ = false;

    // Jobs the refresh had to park lose their guarantee but keep
    // their progress: they continue as best-effort.
    for (const PlanningJob &parked : refresh.parked) {
        auto it = slo_.find(parked.id);
        if (it == slo_.end())
            continue;
        Active moved = it->second;
        moved.deadline = kTimeInfinity;
        moved.soft = false;
        best_effort_.emplace(parked.id, std::move(moved));
        slo_.erase(it);
        ++stats_.demotions;
        obs::count("serve.demotions");
    }

    // Residual availability after the refreshed minimum shares; grown
    // lazily to whatever horizon a candidate needs.
    std::map<JobId, SlotPlan> shares = std::move(refresh.min_shares);
    std::vector<GpuCount> available;
    auto ensure_slots = [&](int horizon) {
        if (static_cast<int>(available.size()) < horizon) {
            available.resize(static_cast<std::size_t>(horizon),
                             config_.total_gpus);
        }
    };
    for (const auto &[id, plan] : shares) {
        ensure_slots(plan.horizon());
        for (int s = 0; s < plan.horizon(); ++s) {
            GpuCount &a = available[static_cast<std::size_t>(s)];
            a -= plan.at(s);
            EF_CHECK_MSG(a >= 0, "service over-reserved slot " << s);
        }
    }

    const bool token = governor_.try_acquire(t);
    const std::size_t batch = pending_.size();
    std::vector<PlanningJob> alloc_slo = std::move(refresh.slo);
    std::uint64_t drain_cost = 0;
    while (!pending_.empty()) {
        Submission sub = std::move(pending_.front());
        pending_.pop_front();
        const JobSpec &spec = sub.spec;
        if (spec.is_best_effort()) {
            if (best_effort_.size() >= config_.max_active_best_effort) {
                decide(sub, t, ShedVerdict::kShedQueueFull);
                continue;
            }
            best_effort_.emplace(
                spec.id,
                Active{sub.curve,
                       static_cast<double>(spec.iterations),
                       kTimeInfinity, false});
            decide(sub, t, ShedVerdict::kAdmittedBestEffort);
            continue;
        }
        const PlanHorizon d =
            plan_horizon(t, spec.deadline, planner_.slot_seconds,
                         planner_.max_slots);
        ensure_slots(d.slots);
        const double inflated = margin.inflate(
            static_cast<double>(spec.iterations), sub.curve);
        auto fill = progressive_fill(sub.curve, inflated, available, d,
                                     planner_, /*start_slot=*/0,
                                     &drain_cost);
        if (fill.has_value()) {
            for (int s = 0; s < fill->horizon(); ++s) {
                available[static_cast<std::size_t>(s)] -= fill->at(s);
            }
            PlanningJob job;
            job.id = spec.id;
            job.curve = sub.curve;
            job.remaining_iterations = inflated;
            job.deadline = spec.deadline;
            job.soft = spec.has_soft_deadline();
            alloc_slo.push_back(std::move(job));
            shares.emplace(spec.id, std::move(*fill));
            slo_.emplace(spec.id,
                         Active{std::move(sub.curve),
                                static_cast<double>(spec.iterations),
                                spec.deadline,
                                spec.has_soft_deadline()});
            decide(sub, t, ShedVerdict::kAdmitted);
        } else if (config_.degrade_infeasible &&
                   best_effort_.size() <
                       config_.max_active_best_effort) {
            best_effort_.emplace(
                spec.id,
                Active{std::move(sub.curve),
                       static_cast<double>(spec.iterations),
                       kTimeInfinity, false});
            decide(sub, t, ShedVerdict::kDegraded);
        } else {
            decide(sub, t, ShedVerdict::kShedInfeasible);
        }
    }
    stats_.planning_cost += drain_cost;

    std::vector<PlanningJob> best_effort;
    best_effort.reserve(best_effort_.size());
    for (const auto &[id, active] : best_effort_) {
        PlanningJob job;
        job.id = id;
        job.curve = active.curve;
        job.remaining_iterations = active.remaining_iterations;
        job.deadline = kTimeInfinity;
        best_effort.push_back(std::move(job));
    }
    AllocationOutcome outcome =
        sharded_ ? run_allocation_sharded(planner_, t, alloc_slo, shares,
                                          best_effort, concurrency_,
                                          &shard_stats)
                 : run_allocation(planner_, t, alloc_slo, shares,
                                  best_effort);
    gpus_now_ = std::move(outcome.gpus_now);
    if (sharded_)
        emit_shard_round(t, shard_stats);

    ++stats_.rounds;
    if (!token)
        ++stats_.rounds_forced;
    obs::count("serve.rounds");
    if (!token)
        obs::count("serve.rounds_forced");
    obs::gauge_set("serve.queue_depth", 0.0);
    if (obs::tracing()) {
        obs::TraceEvent event;
        event.time = t;
        event.kind = obs::EventKind::kServeRound;
        event.a = static_cast<std::int64_t>(batch);
        event.b = token ? 0 : 1;
        obs::emit(event);
    }
    fold_round_hash(t, batch, !token);
    arm();
}

void
Service::fold_round_hash(Time t, std::size_t batch, bool forced)
{
    Fnv1a h;
    h.u64(hash_);
    h.f64(t);
    h.u64(batch);
    h.u64(forced ? 1 : 0);
    h.u64(stats_.submitted);
    h.u64(stats_.admitted);
    h.u64(stats_.admitted_best_effort);
    h.u64(stats_.degraded);
    h.u64(stats_.shed_queue_full);
    h.u64(stats_.shed_infeasible);
    h.u64(stats_.rpc_dropped);
    h.u64(stats_.replan_timeouts);
    h.u64(stats_.finished);
    h.u64(stats_.deadline_misses);
    h.u64(stats_.demotions);
    for (const auto &[id, active] : slo_) {
        h.i64(id);
        h.f64(active.remaining_iterations);
        h.f64(active.deadline);
    }
    for (const auto &[id, active] : best_effort_) {
        h.i64(id);
        h.f64(active.remaining_iterations);
    }
    for (const auto &[id, gpus] : gpus_now_) {
        h.i64(id);
        h.i64(static_cast<std::int64_t>(gpus));
    }
    h.u64(governor_.fingerprint());
    if (faults_ != nullptr)
        h.u64(faults_->state_fingerprint());
    hash_ = h.digest();
}

}  // namespace serve
}  // namespace ef

#include "serve/governor.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace ef {
namespace serve {

ReplanGovernor::ReplanGovernor(GovernorConfig config)
    : config_(config),
      // Start full: the first submissions of a run should not wait for
      // the bucket to fill from zero.
      tokens_(config.burst)
{
    EF_FATAL_IF(config_.rounds_per_second <= 0.0,
                "governor needs rounds_per_second > 0");
    EF_FATAL_IF(config_.burst < 1.0, "governor needs burst >= 1");
    EF_FATAL_IF(config_.starvation_horizon_s <= 0.0,
                "governor needs starvation_horizon_s > 0");
}

void
ReplanGovernor::refill(Time now)
{
    if (now <= last_refill_)
        return;
    tokens_ = std::min(config_.burst,
                       tokens_ + (now - last_refill_) *
                                     config_.rounds_per_second);
    last_refill_ = now;
}

bool
ReplanGovernor::try_acquire(Time now)
{
    refill(now);
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

Time
ReplanGovernor::next_eligible(Time now) const
{
    const double balance = tokens_at(now);
    if (balance >= 1.0)
        return now;
    return now + (1.0 - balance) / config_.rounds_per_second;
}

double
ReplanGovernor::tokens_at(Time now) const
{
    if (now <= last_refill_)
        return tokens_;
    return std::min(config_.burst,
                    tokens_ + (now - last_refill_) *
                                  config_.rounds_per_second);
}

std::uint64_t
ReplanGovernor::fingerprint() const
{
    Fnv1a h;
    h.f64(tokens_);
    h.f64(last_refill_);
    return h.digest();
}

}  // namespace serve
}  // namespace ef

#include "serve/verdict.h"

namespace ef {
namespace serve {

const char *
shed_verdict_name(ShedVerdict verdict)
{
    switch (verdict) {
      case ShedVerdict::kAdmitted: return "admitted";
      case ShedVerdict::kAdmittedBestEffort: return "admitted-best-effort";
      case ShedVerdict::kDegraded: return "degraded";
      case ShedVerdict::kShedQueueFull: return "shed-queue-full";
      case ShedVerdict::kShedInfeasible: return "shed-infeasible";
    }
    return "?";
}

}  // namespace serve
}  // namespace ef

/**
 * @file
 * Streaming submission front end over the ElasticFlow planning core.
 *
 * The batch pipeline (trace in, results out) assumes every submission
 * is worth a full planning pass. An always-on deployment cannot: under
 * an arrival storm, per-submission replans make the scheduler the
 * bottleneck and an unbounded queue turns overload into latency for
 * everyone. The Service accepts submissions one at a time and defends
 * itself explicitly:
 *
 *  - Bounded admission queue. Above the watermark a submission is shed
 *    *synchronously* with ShedVerdict::kShedQueueFull — O(1), no
 *    planning work, the streaming analogue of TCP backpressure.
 *  - Replan-cadence governor (serve/governor.h). Queued submissions
 *    are batched into one planning round per token; a round is forced
 *    (tokenless) when the oldest submission has waited the starvation
 *    horizon, so every queued submission gets its verdict within
 *    `governor.starvation_horizon_s`.
 *  - Planning watchdog. Each round's Algorithm 1 work is metered in
 *    deterministic cost units (AdmissionOutcome::cost — never wall
 *    clock, so runs replay bit-identically). A round whose min-share
 *    refresh exceeds `watchdog_budget` is abandoned: the service keeps
 *    the last committed plans, records `replan_timeout`, and retries
 *    the round with the budget lifted, draining the queue in one
 *    batch.
 *  - Fault-path integration. With a FaultInjector attached, submission
 *    RPCs are dropped by the injector's RPC class (the caller never
 *    gets a verdict, as in a lossy network), and scripted
 *    arrival-storm events drive the synthetic stream's rate
 *    (serve/stream.h).
 *
 * Between rounds, admitted jobs progress fluidly at the throughput of
 * their last Algorithm 2 allocation; completions are retired (with
 * interpolated finish times) at the start of the next round. The
 * service is an admission/allocation control plane, not a full
 * simulator: placement, migration, and checkpoint mechanics stay in
 * ef::sim.
 *
 * Determinism: submit/advance sequences are pure functions of the
 * inputs. state_hash() chains every committed round; two runs over the
 * same stream and config produce identical hashes.
 */
#ifndef EF_SERVE_SERVICE_H_
#define EF_SERVE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "core/admission.h"
#include "core/planner_concurrency.h"
#include "core/scaling_curve.h"
#include "recover/log.h"
#include "serve/governor.h"
#include "serve/verdict.h"
#include "workload/job.h"

namespace ef {

class FaultInjector;

namespace serve {

/** One streamed submission: the job plus its profiled scaling curve. */
struct Submission
{
    JobSpec spec;
    ScalingCurve curve;
};

/** Static configuration of a Service instance. */
struct ServiceConfig
{
    GpuCount total_gpus = 64;

    // --- planner (mirrors ElasticFlowConfig) ---------------------------
    Time slot_seconds = 300.0;
    int max_slots = 1 << 16;
    FillDirection direction = FillDirection::kEarliest;
    /** Relative safety margin on SLO remaining work (§4.3). */
    double admission_margin = 0.05;
    /** Absolute allowance for scaling pauses (seconds of progress). */
    Time overhead_allowance_s = 0.0;

    // --- overload control ----------------------------------------------
    /** Admission-queue watermark: submissions beyond this many pending
     *  are shed synchronously with kShedQueueFull. */
    std::size_t queue_watermark = 64;
    GovernorConfig governor;
    /** Accept deadline-infeasible SLO submissions as best-effort
     *  (kDegraded) instead of shedding them (kShedInfeasible). */
    bool degrade_infeasible = false;
    /** Cap on concurrently active best-effort jobs; beyond it,
     *  best-effort submissions are shed with kShedQueueFull. */
    std::size_t max_active_best_effort = 1024;
    /** Watchdog budget for one round's min-share refresh, in
     *  deterministic planning cost units (see AdmissionOutcome::cost);
     *  0 disables the watchdog. */
    std::uint64_t watchdog_budget = 0;

    // --- shard-parallel planning (DESIGN.md §10) -----------------------
    /** Planner shards per round; <= 0 plans single-threaded. Rounds,
     *  verdicts, watchdog decisions, and state_hash() are bit-identical
     *  for any setting. */
    int planner_shards = 0;
    /** Shard-phase worker threads (including the caller); <= 1 runs
     *  shards inline. Only read when planner_shards is positive. */
    int planner_threads = 1;
};

/** Monotonic counters of one service run. */
struct ServiceStats
{
    std::uint64_t submitted = 0;      ///< submissions that got a verdict
    std::uint64_t rpc_dropped = 0;    ///< submissions lost to RPC faults
    std::uint64_t admitted = 0;
    std::uint64_t admitted_best_effort = 0;
    std::uint64_t degraded = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_infeasible = 0;

    // ef-audit: transient(hash: monotone round counter, implied by the number of folded commits)
    std::uint64_t rounds = 0;         ///< committed planning rounds
    // ef-audit: transient(hash: diagnostic counter; the forced flag itself is folded per round)
    std::uint64_t rounds_forced = 0;  ///< committed without a token
    std::uint64_t replan_timeouts = 0;///< watchdog abandonments
    // ef-audit: transient(hash: cost accounting, derived from the committed plan sizes)
    std::uint64_t planning_cost = 0;  ///< total cost units spent

    std::uint64_t finished = 0;       ///< retired completions
    std::uint64_t deadline_misses = 0;///< retired past their deadline
    std::uint64_t demotions = 0;      ///< SLO parked to best-effort

    // ef-audit: transient(hash: high-water diagnostic, derived from the folded queue depths)
    std::size_t max_queue_depth = 0;  ///< never exceeds the watermark

    /** Sheds of both kinds. */
    std::uint64_t shed() const
    {
        return shed_queue_full + shed_infeasible;
    }
};

/** The streaming admission/allocation service. */
class Service
{
  public:
    /** @p faults may be null (no fault injection); borrowed. */
    explicit Service(ServiceConfig config,
                     FaultInjector *faults = nullptr);

    /**
     * Submit one job. Advances the clock to spec.submit_time (running
     * any planning rounds that came due), then either sheds
     * synchronously, drops the RPC (fault path), or enqueues for the
     * next round. Submission times must be non-decreasing.
     */
    void submit(Submission submission);

    /** Advance the clock, running every planning round due by @p t. */
    void advance_to(Time t);

    /** Drain the queue with one final (forced) round. */
    void finish();

    Time now() const { return now_; }
    std::size_t queue_depth() const { return pending_.size(); }
    std::size_t active_jobs() const
    {
        return slo_.size() + best_effort_.size();
    }
    const ServiceStats &stats() const { return stats_; }
    const ServiceConfig &config() const { return config_; }

    /**
     * Chained FNV-1a digest over every committed round: clock, verdict
     * counters, active set (ids + remaining work), current
     * allocations, and the governor's bucket state. Two runs match
     * iff their whole decision histories match.
     */
    std::uint64_t state_hash() const { return hash_; }

    /**
     * Observer for every Decision in the order it is made. Optional —
     * the soak harness leaves it unset so a million-submission run
     * stores nothing per submission.
     */
    void set_decision_callback(std::function<void(const Decision &)> cb)
    {
        on_decision_ = std::move(cb);
    }

    /**
     * Durable control plane (DESIGN.md §12). Opens (or recovers
     * from) the snapshot + write-ahead journal under @p dir. With
     * @p recover false the directory is initialised fresh: a base
     * snapshot is written and every subsequent submission, external
     * advance, verdict, and round commit is journaled with fsync'd
     * commit points; a fresh snapshot truncates the journal every
     * @p snapshot_every committed rounds. With @p recover true the
     * last snapshot is loaded and the journal tail replayed through
     * the normal code paths: verdicts whose kVerdict record reached
     * the journal before the crash are suppressed (they were already
     * delivered — exactly-once), every replayed round must reproduce
     * its journaled hash, and a torn tail is discarded at the last
     * valid commit point. Call before the first submit(); returns a
     * typed Status instead of aborting on unreadable or corrupt
     * input.
     */
    recover::Status bind_durability(const std::string &dir,
                                    std::uint64_t snapshot_every,
                                    bool recover);

  private:
    /** One active job (either list). */
    struct Active
    {
        // ef-audit: transient(hash: submission-time constant, journaled (codec) and pinned by the job id)
        ScalingCurve curve;
        double remaining_iterations = 0.0;
        Time deadline = kTimeInfinity;  ///< infinity for best-effort
        // ef-audit: transient(hash: submission-time constant, implied by which list (slo_/best_effort_) holds the job)
        bool soft = false;
    };

    void decide(const Submission &submission, Time at,
                ShedVerdict verdict);
    /** Run one planning round at time @p t. */
    void run_round(Time t);
    /** advance_to() without journaling (shared with submit/replay). */
    void advance_internal(Time t);
    /** Full-state snapshot payload (DESIGN.md §12). */
    void encode_state(recover::Encoder *enc) const;
    recover::Status decode_state(recover::Decoder *dec);
    std::uint64_t config_fingerprint() const;
    /** Re-feed the journal tail through submit/advance/finish. */
    recover::Status replay_tail(const recover::JournalContents &tail);
    void journal_append(recover::RecordKind kind,
                        const recover::Encoder &enc, bool sync);
    /** Write a due cadence snapshot (end of each public entry). */
    void maybe_snapshot();
    bool replaying() const
    {
        return replay_round_next_ < replay_rounds_.size() ||
               replay_verdict_next_ < replay_verdicts_.size() ||
               replay_active_;
    }
    /** Fluid progress + completion retirement over [last_round_, t]. */
    void retire(Time t);
    /** Recompute when the next round is due (infinity when idle). */
    void arm();
    void fold_round_hash(Time t, std::size_t batch, bool forced);

    // ef-audit: transient(all: construction-time constant; its fingerprint is checked against the snapshot header instead)
    ServiceConfig config_;
    // ef-audit: transient(all: derived from config_ at construction)
    PlannerConfig planner_;
    FaultInjector *faults_;
    ReplanGovernor governor_;
    /** Shard worker pool (only when planner_threads > 1). */
    // ef-audit: transient(all: worker threads, rebuilt from config_ at construction)
    std::unique_ptr<ThreadPool> pool_;
    /** Sharding plan; shards <= 1 and no pool when disabled. */
    // ef-audit: transient(all: derived from config_ at construction)
    PlannerConcurrency concurrency_;
    // ef-audit: transient(all: derived from config_ at construction)
    bool sharded_ = false;

    // ef-audit: covered(hash: folded into every round commit as the round time t)
    Time now_ = 0.0;
    // ef-audit: transient(hash: equals the previous folded round time)
    Time last_round_ = 0.0;
    // ef-audit: transient(hash: re-derived by arm() from pending_/active state after every entry point)
    Time next_due_ = kTimeInfinity;
    // ef-audit: transient(hash: watchdog retry latch, resolved within the round that set it)
    bool escalated_ = false;  ///< watchdog retry in progress

    // ef-audit: transient(hash: queue contents are journaled (codec); each round folds the batch it drains, so queue history is pinned)
    std::deque<Submission> pending_;
    std::map<JobId, Active> slo_;
    std::map<JobId, Active> best_effort_;
    /** Per-job GPU counts from the last committed allocation; the
        watchdog fallback keeps these untouched when a round is
        abandoned. */
    std::map<JobId, GpuCount> gpus_now_;
    // ef-audit: transient(hash: watchdog escalation memo, resolved by the next committed round)
    int replan_failures_ = 0;

    ServiceStats stats_;
    std::uint64_t hash_ = 0x9e3779b97f4a7c15ULL;
    // ef-audit: transient(all: borrowed observer callback, not state)
    std::function<void(const Decision &)> on_decision_;

    // --- durability (DESIGN.md §12) ------------------------------------
    // ef-audit: transient(all: the log handle IS the persistence mechanism, not state inside it)
    std::unique_ptr<recover::DurableLog> durable_;
    // ef-audit: transient(all: bind_durability() parameter, re-supplied on recovery)
    std::uint64_t snapshot_every_ = 16;
    // ef-audit: transient(all: snapshot cadence memo; a recovered service restarts its cadence at the recovery point)
    std::uint64_t snapshot_round_ = 0;
    /** A cadence snapshot is due at the next entry-point boundary. */
    // ef-audit: transient(all: drains at the next entry-point boundary, never live at a commit point)
    bool snapshot_pending_ = false;
    /** Journaled verdicts not yet matched by the replay. */
    struct ReplayVerdict
    {
        JobId id;
        std::uint8_t verdict;
    };
    // ef-audit: transient(all: recovery-session scratch, loaded FROM the journal)
    std::vector<ReplayVerdict> replay_verdicts_;
    // ef-audit: transient(all: recovery-session cursor into replay_verdicts_)
    std::size_t replay_verdict_next_ = 0;
    /** Journaled round commits (round index, hash) to verify. */
    // ef-audit: transient(all: recovery-session scratch, loaded FROM the journal)
    std::vector<std::pair<std::uint64_t, std::uint64_t>> replay_rounds_;
    // ef-audit: transient(all: recovery-session cursor into replay_rounds_)
    std::size_t replay_round_next_ = 0;
    /** True while replay_tail() re-feeds journaled inputs. */
    // ef-audit: transient(all: recovery-session flag, true only inside replay_tail())
    bool replay_active_ = false;
};

}  // namespace serve
}  // namespace ef

#endif  // EF_SERVE_SERVICE_H_

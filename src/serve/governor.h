/**
 * @file
 * Replan-cadence governor: a token bucket over *simulated* time.
 *
 * Every submission could trigger a full Algorithm 1 + 2 replan; under
 * an arrival storm that turns the scheduler itself into the
 * bottleneck. The governor bounds scheduler invocations per simulated
 * second and lets the service batch everything that queued up in
 * between into one planning round. Two properties hold by
 * construction:
 *
 *  - Rate bound: at most `burst` rounds back to back, and a long-run
 *    average of `rounds_per_second` token-funded rounds.
 *  - Starvation bound: a round is *forced* (without a token) once the
 *    oldest queued submission has waited `starvation_horizon_s`, so no
 *    submission waits past the horizon for its verdict. Forced rounds
 *    do not consume tokens, so the effective worst-case round rate is
 *    rounds_per_second + 1/starvation_horizon_s.
 *
 * Purely arithmetic on sim timestamps — no wall clock, no RNG — so a
 * governed run replays byte-identically.
 */
#ifndef EF_SERVE_GOVERNOR_H_
#define EF_SERVE_GOVERNOR_H_

#include <cstdint>

#include "common/types.h"

namespace ef {
namespace serve {

/** Token-bucket parameters. */
struct GovernorConfig
{
    /** Sustained replan rate (tokens per simulated second). */
    double rounds_per_second = 0.2;
    /** Bucket capacity: rounds that may fire back to back. */
    double burst = 2.0;
    /** Longest a queued submission may wait for its verdict before a
     *  round is forced without a token. */
    Time starvation_horizon_s = 60.0;
};

/** The token bucket. Refills lazily on each query. */
class ReplanGovernor
{
  public:
    explicit ReplanGovernor(GovernorConfig config);

    const GovernorConfig &config() const { return config_; }

    /**
     * Take a token for a round at @p now. Returns false (and leaves
     * the bucket untouched) when the bucket is empty — the caller may
     * still run a forced round for the starvation bound.
     */
    bool try_acquire(Time now);

    /** Earliest time >= @p now at which a token will be available. */
    Time next_eligible(Time now) const;

    /** Current token balance at @p now (refill applied, not stored). */
    double tokens_at(Time now) const;

    /**
     * FNV-1a digest of the mutable bucket state, folded into the
     * service state hash so two runs agree only if their governors
     * advanced in lockstep.
     */
    std::uint64_t fingerprint() const;

    /** Raw bucket state for crash-recovery snapshots. */
    double tokens_raw() const { return tokens_; }
    Time last_refill() const { return last_refill_; }

    /** Restore a bucket captured by tokens_raw()/last_refill(). */
    void
    restore(double tokens, Time last_refill)
    {
        tokens_ = tokens;
        last_refill_ = last_refill;
    }

  private:
    /** Refill up to @p now (monotonic; past times are ignored). */
    void refill(Time now);

    // ef-audit: transient(all: construction-time constant, re-supplied when the service is rebuilt)
    GovernorConfig config_;
    double tokens_ = 0.0;
    Time last_refill_ = 0.0;
};

}  // namespace serve
}  // namespace ef

#endif  // EF_SERVE_GOVERNOR_H_

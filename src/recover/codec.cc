#include "recover/codec.h"

#include <sstream>

namespace ef::recover {

const char *
error_code_name(ErrorCode code)
{
    switch (code) {
    case ErrorCode::kOk:
        return "ok";
    case ErrorCode::kIoError:
        return "io-error";
    case ErrorCode::kBadMagic:
        return "bad-magic";
    case ErrorCode::kBadVersion:
        return "bad-version";
    case ErrorCode::kChecksumMismatch:
        return "checksum-mismatch";
    case ErrorCode::kTruncated:
        return "truncated";
    case ErrorCode::kBadRecord:
        return "bad-record";
    case ErrorCode::kStateMismatch:
        return "state-mismatch";
    }
    return "unknown";
}

std::string
Status::to_string() const
{
    std::ostringstream out;
    out << error_code_name(code) << ": " << message;
    if (record >= 0)
        out << " (record " << record;
    if (offset >= 0)
        out << (record >= 0 ? ", " : " (") << "byte " << offset;
    if (record >= 0 || offset >= 0)
        out << ")";
    return out.str();
}

}  // namespace ef::recover

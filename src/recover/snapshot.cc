#include "recover/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/hash.h"
#include "recover/file_util.h"

namespace ef::recover {

Status
write_snapshot_file(const std::string &path, const std::string &payload)
{
    Encoder header;
    header.u32(kSnapshotMagic);
    header.u32(kSnapshotVersion);
    header.u64(payload.size());
    Fnv1a sum;
    sum.bytes(payload.data(), payload.size());
    header.u64(sum.digest());

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return Status::error(ErrorCode::kIoError,
                             "cannot open '" + tmp +
                                 "' for writing: " + std::strerror(errno));
    bool wrote = std::fwrite(header.data().data(), 1, header.size(), f) ==
                     header.size() &&
                 (payload.empty() ||
                  std::fwrite(payload.data(), 1, payload.size(), f) ==
                      payload.size());
    wrote = wrote && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    if (std::fclose(f) != 0)
        wrote = false;
    if (!wrote) {
        std::remove(tmp.c_str());
        return Status::error(ErrorCode::kIoError,
                             "short write to '" + tmp +
                                 "': " + std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::error(ErrorCode::kIoError,
                             "cannot rename '" + tmp + "' to '" + path +
                                 "': " + std::strerror(errno));
    }
    // Make the rename itself durable: fsync the containing directory.
    return fsync_parent_dir(path);
}

Status
read_snapshot_file(const std::string &path, std::string *payload)
{
    payload->clear();
    std::string bytes;
    Status st = read_whole_file(path, &bytes);
    if (!st.ok())
        return st;

    Decoder dec(bytes);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t len = 0;
    std::uint64_t checksum = 0;
    if (!dec.u32(&magic) || !dec.u32(&version) || !dec.u64(&len) ||
        !dec.u64(&checksum))
        return Status::error(ErrorCode::kTruncated,
                             "snapshot '" + path +
                                 "' is shorter than its header",
                             -1, static_cast<std::int64_t>(bytes.size()));
    if (magic != kSnapshotMagic)
        return Status::error(ErrorCode::kBadMagic,
                             "'" + path + "' is not a snapshot file", -1,
                             0);
    if (version != kSnapshotVersion)
        return Status::error(ErrorCode::kBadVersion,
                             "snapshot '" + path + "' has version " +
                                 std::to_string(version) + ", expected " +
                                 std::to_string(kSnapshotVersion),
                             -1, 4);
    if (len != dec.remaining())
        return Status::error(
            ErrorCode::kTruncated,
            "snapshot '" + path + "' declares " + std::to_string(len) +
                " payload bytes but has " +
                std::to_string(dec.remaining()),
            -1, static_cast<std::int64_t>(bytes.size()));

    // Header is 4+4+8+8 = 24 bytes; the rest is the payload verbatim.
    std::string body = bytes.substr(24);
    Fnv1a sum;
    sum.bytes(body.data(), body.size());
    if (sum.digest() != checksum)
        return Status::error(ErrorCode::kChecksumMismatch,
                             "snapshot '" + path +
                                 "' payload checksum mismatch",
                             -1, 24);
    *payload = std::move(body);
    return Status{};
}

}  // namespace ef::recover

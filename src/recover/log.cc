#include "recover/log.h"

#include "recover/file_util.h"
#include "recover/snapshot.h"

namespace ef::recover {

std::string
DurableLog::snapshot_path(const std::string &dir)
{
    return dir + "/snapshot.bin";
}

std::string
DurableLog::journal_path(const std::string &dir)
{
    return dir + "/journal.bin";
}

bool
DurableLog::recoverable(const std::string &dir)
{
    return file_exists(snapshot_path(dir));
}

Status
DurableLog::load(const std::string &dir, std::string *snapshot,
                 JournalContents *contents)
{
    Status st = read_snapshot_file(snapshot_path(dir), snapshot);
    if (!st.ok())
        return st;
    if (!file_exists(journal_path(dir))) {
        // Snapshot without a journal: valid (crash right after a
        // snapshot replaced it but before the fresh journal landed).
        contents->records.clear();
        contents->tail = Status{};
        contents->valid_bytes = 0;
        return Status{};
    }
    return read_journal(journal_path(dir), contents);
}

Status
DurableLog::open(const std::string &dir)
{
    Status st = ensure_dir(dir);
    if (!st.ok())
        return st;
    dir_ = dir;
    st = journal_.open(journal_path(dir), /*truncate=*/true);
    if (!st.ok())
        return st;
    return fsync_parent_dir(journal_path(dir));
}

Status
DurableLog::open_existing(const std::string &dir,
                          std::uint64_t existing_bytes)
{
    Status st = ensure_dir(dir);
    if (!st.ok())
        return st;
    dir_ = dir;
    if (!file_exists(journal_path(dir))) {
        // Snapshot-only recovery (crash landed between a snapshot and
        // the fresh journal): nothing to preserve, start clean.
        st = journal_.open(journal_path(dir), /*truncate=*/true);
    } else {
        st = journal_.open(journal_path(dir), /*truncate=*/false,
                           existing_bytes);
    }
    if (!st.ok())
        return st;
    return fsync_parent_dir(journal_path(dir));
}

Status
DurableLog::write_snapshot(const std::string &payload)
{
    Status st = write_snapshot_file(snapshot_path(dir_), payload);
    if (!st.ok())
        return st;
    last_snapshot_bytes_ = payload.size();
    // The snapshot subsumes everything journaled so far.
    return journal_.truncate_all();
}

Status
DurableLog::append(RecordKind kind, const std::string &body)
{
    return journal_.append(kind, body);
}

Status
DurableLog::commit()
{
    return journal_.commit();
}

}  // namespace ef::recover

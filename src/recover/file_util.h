/**
 * @file
 * Small POSIX file helpers shared by the snapshot and journal code.
 *
 * All raw file I/O in the library tree is confined to src/recover/ (and
 * the trace/CSV loaders) — enforced by the ef-lint `file-io` rule — so
 * these helpers are deliberately the only place that talks to the OS.
 */
#ifndef EF_RECOVER_FILE_UTIL_H_
#define EF_RECOVER_FILE_UTIL_H_

#include <string>

#include "recover/codec.h"

namespace ef::recover {

/** Create `dir` (and parents) if missing. */
Status ensure_dir(const std::string &dir);

/** Read the whole file into `*out` (binary, no size limit checks). */
Status read_whole_file(const std::string &path, std::string *out);

/** fsync the directory containing `path` so renames/creates persist. */
Status fsync_parent_dir(const std::string &path);

/** True when a file exists at `path`. */
bool file_exists(const std::string &path);

}  // namespace ef::recover

#endif  // EF_RECOVER_FILE_UTIL_H_

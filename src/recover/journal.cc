#include "recover/journal.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/hash.h"
#include "recover/file_util.h"

namespace ef::recover {

namespace {

/** Sanity cap on a single record: corrupt lengths fail fast. */
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

std::uint64_t
payload_checksum(const std::string &payload)
{
    Fnv1a sum;
    sum.bytes(payload.data(), payload.size());
    return sum.digest();
}

}  // namespace

const char *
record_kind_name(RecordKind kind)
{
    switch (kind) {
    case RecordKind::kRoundCommit:
        return "round-commit";
    case RecordKind::kSubmission:
        return "submission";
    case RecordKind::kVerdict:
        return "verdict";
    case RecordKind::kPlanCommit:
        return "plan-commit";
    case RecordKind::kFault:
        return "fault";
    case RecordKind::kAdvance:
        return "advance";
    case RecordKind::kDefrag:
        return "defrag";
    }
    return "unknown";
}

Status
read_journal(const std::string &path, JournalContents *out)
{
    out->records.clear();
    out->tail = Status{};
    out->valid_bytes = 0;

    std::string bytes;
    Status st = read_whole_file(path, &bytes);
    if (!st.ok())
        return st;

    Decoder dec(bytes);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    if (!dec.u32(&magic) || !dec.u32(&version))
        return Status::error(ErrorCode::kTruncated,
                             "journal '" + path +
                                 "' is shorter than its header",
                             -1, static_cast<std::int64_t>(bytes.size()));
    if (magic != kJournalMagic)
        return Status::error(ErrorCode::kBadMagic,
                             "'" + path + "' is not a journal file", -1,
                             0);
    if (version != kJournalVersion)
        return Status::error(ErrorCode::kBadVersion,
                             "journal '" + path + "' has version " +
                                 std::to_string(version) + ", expected " +
                                 std::to_string(kJournalVersion),
                             -1, 4);
    out->valid_bytes = 8;

    std::int64_t index = 0;
    while (!dec.empty()) {
        std::uint64_t offset = bytes.size() - dec.remaining();
        std::uint32_t len = 0;
        std::uint64_t checksum = 0;
        if (!dec.u32(&len) || !dec.u64(&checksum) ||
            dec.remaining() < len) {
            out->tail = Status::error(
                ErrorCode::kTruncated,
                "journal '" + path + "' ends mid-record; " +
                    std::to_string(out->records.size()) +
                    " committed record(s) retained",
                index, static_cast<std::int64_t>(offset));
            return Status{};
        }
        if (len == 0 || len > kMaxRecordBytes) {
            out->tail = Status::error(
                ErrorCode::kBadRecord,
                "journal '" + path + "' record has impossible length " +
                    std::to_string(len),
                index, static_cast<std::int64_t>(offset));
            return Status{};
        }
        std::string payload =
            bytes.substr(bytes.size() - dec.remaining(), len);
        if (payload_checksum(payload) != checksum) {
            out->tail = Status::error(
                ErrorCode::kChecksumMismatch,
                "journal '" + path + "' record checksum mismatch; " +
                    std::to_string(out->records.size()) +
                    " committed record(s) retained",
                index, static_cast<std::int64_t>(offset));
            return Status{};
        }
        // Advance the decoder past the payload we just took.
        {
            std::uint8_t scratch = 0;
            for (std::uint32_t i = 0; i < len; ++i)
                dec.u8(&scratch);
        }
        JournalRecord rec;
        std::uint8_t kind_byte = static_cast<std::uint8_t>(payload[0]);
        rec.kind = static_cast<RecordKind>(kind_byte);
        if (record_kind_name(rec.kind) == std::string("unknown")) {
            out->tail = Status::error(
                ErrorCode::kBadRecord,
                "journal '" + path + "' record has unknown kind " +
                    std::to_string(static_cast<int>(kind_byte)),
                index, static_cast<std::int64_t>(offset));
            return Status{};
        }
        rec.body = payload.substr(1);
        out->records.push_back(std::move(rec));
        out->valid_bytes = bytes.size() - dec.remaining();
        ++index;
    }
    return Status{};
}

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

Status
JournalWriter::open(const std::string &path, bool truncate,
                    std::uint64_t existing_bytes)
{
    close();
    path_ = path;
    records_ = 0;
    if (truncate)
        return truncate_all();

    file_ = std::fopen(path.c_str(), "r+b");
    if (file_ == nullptr)
        return Status::error(ErrorCode::kIoError,
                             "cannot open journal '" + path +
                                 "': " + std::strerror(errno));
    // Chop any torn tail off before appending: new records must start
    // at the last valid boundary the reader established.
    if (::ftruncate(fileno(file_),
                    static_cast<off_t>(existing_bytes)) != 0 ||
        std::fseek(file_, 0, SEEK_END) != 0) {
        Status st = Status::error(ErrorCode::kIoError,
                                  "cannot truncate journal '" + path +
                                      "': " + std::strerror(errno));
        close();
        return st;
    }
    return Status{};
}

Status
JournalWriter::truncate_all()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr)
        return Status::error(ErrorCode::kIoError,
                             "cannot create journal '" + path_ +
                                 "': " + std::strerror(errno));
    records_ = 0;
    Encoder header;
    header.u32(kJournalMagic);
    header.u32(kJournalVersion);
    if (std::fwrite(header.data().data(), 1, header.size(), file_) !=
        header.size())
        return Status::error(ErrorCode::kIoError,
                             "short write to journal '" + path_ +
                                 "': " + std::strerror(errno));
    return commit();
}

Status
JournalWriter::append(RecordKind kind, const std::string &body)
{
    if (file_ == nullptr)
        return Status::error(ErrorCode::kIoError,
                             "journal '" + path_ + "' is not open");
    std::string payload;
    payload.reserve(body.size() + 1);
    payload.push_back(static_cast<char>(kind));
    payload.append(body);

    Encoder frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u64(payload_checksum(payload));
    if (std::fwrite(frame.data().data(), 1, frame.size(), file_) !=
            frame.size() ||
        std::fwrite(payload.data(), 1, payload.size(), file_) !=
            payload.size())
        return Status::error(ErrorCode::kIoError,
                             "short write to journal '" + path_ +
                                 "': " + std::strerror(errno));
    ++records_;
    return Status{};
}

Status
JournalWriter::commit()
{
    if (file_ == nullptr)
        return Status::error(ErrorCode::kIoError,
                             "journal '" + path_ + "' is not open");
    if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0)
        return Status::error(ErrorCode::kIoError,
                             "cannot sync journal '" + path_ +
                                 "': " + std::strerror(errno));
    return Status{};
}

}  // namespace ef::recover

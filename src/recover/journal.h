/**
 * @file
 * Write-ahead journal: checksummed record framing over an append-only
 * file, with explicit fsync'd commit points.
 *
 * File layout:
 *
 *     [u32 magic "EFJL"] [u32 version]
 *     repeated: [u32 payload_len] [u64 fnv1a(payload)] [payload]
 *
 * where payload[0] is a RecordKind byte and the rest is a
 * recover::Encoder body owned by the record's producer. Records become
 * durable only at commit() (fflush + fsync); a crash between appends
 * leaves a torn tail that the reader detects by checksum/length and
 * discards, returning every record up to the last valid boundary plus
 * a typed tail status. Structural corruption at the head of the file
 * (bad magic, unsupported version) is a hard typed error instead —
 * there is no valid prefix to recover.
 */
#ifndef EF_RECOVER_JOURNAL_H_
#define EF_RECOVER_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "recover/codec.h"

namespace ef::recover {

/** "EFJL" little-endian: ElasticFlow JournaL. */
constexpr std::uint32_t kJournalMagic = 0x4c4a4645u;
constexpr std::uint32_t kJournalVersion = 1;

/**
 * Record kinds shared by the simulator and the serve-mode front end.
 * Values are part of the on-disk format; append only.
 */
enum class RecordKind : std::uint8_t {
    /**
     * Round boundary: the state hash chained at this round plus the
     * scheduler-crash cursor. Every commit() in steady state happens
     * right after appending one of these.
     */
    kRoundCommit = 1,
    /** A job submission accepted into the control plane. */
    kSubmission = 2,
    /** An admission/shed verdict that was issued to the caller. */
    kVerdict = 3,
    /** A committed allocation plan (job → GPU count pairs). */
    kPlanCommit = 4,
    /** An injected fault observed by the control plane. */
    kFault = 5,
    /** An explicit external clock advance (serve mode only). */
    kAdvance = 6,
    /** A committed background-defrag move batch (DESIGN.md §14). */
    kDefrag = 7,
};

/** Stable lowercase name ("round-commit", ...) for diagnostics. */
const char *record_kind_name(RecordKind kind);

/** One decoded journal record: kind byte plus opaque body. */
struct JournalRecord
{
    RecordKind kind = RecordKind::kRoundCommit;
    std::string body;
};

/** Result of scanning a journal file. */
struct JournalContents
{
    /** Every structurally valid record, in append order. */
    std::vector<JournalRecord> records;
    /**
     * kOk when the file ended exactly on a record boundary; otherwise
     * a typed description of the torn/corrupt tail that was discarded
     * (record index and byte offset filled in). Either way `records`
     * holds everything before the anomaly.
     */
    Status tail;
    /** Byte offset one past the last valid record. */
    std::uint64_t valid_bytes = 0;
};

/**
 * Scan the journal at `path`. Returns non-ok only for unrecoverable
 * problems (unreadable file, bad magic, unsupported version); torn or
 * corrupt tails are reported through JournalContents::tail with the
 * valid prefix intact.
 */
Status read_journal(const std::string &path, JournalContents *out);

/** Append-side handle. Not thread-safe; one writer per journal. */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open `path` for appending. With `truncate` the file is restarted
     * with a fresh header; otherwise it must already hold a valid
     * header and `existing_bytes` says where appending resumes (the
     * caller got it from read_journal's valid_bytes, so a torn tail is
     * chopped off before new records land).
     */
    Status open(const std::string &path, bool truncate,
                std::uint64_t existing_bytes = 0);

    /** Buffer one record (kind + body). Durable only after commit(). */
    Status append(RecordKind kind, const std::string &body);

    /** Commit point: flush + fsync everything appended so far. */
    Status commit();

    /** Restart the journal empty (after a snapshot subsumed it). */
    Status truncate_all();

    /** Records appended since open()/truncate_all(). */
    std::uint64_t records() const { return records_; }

    bool is_open() const { return file_ != nullptr; }

    void close();

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t records_ = 0;
};

}  // namespace ef::recover

#endif  // EF_RECOVER_JOURNAL_H_

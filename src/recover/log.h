/**
 * @file
 * DurableLog: a journal directory holding one snapshot plus one
 * write-ahead journal, with snapshot-triggered truncation.
 *
 * Protocol (see DESIGN.md §12):
 *   - A fresh run calls open() (restarts the journal) and then
 *     write_snapshot() with the initial state, so recovery always has
 *     a base to load.
 *   - Steady state appends delta records and ends every round with a
 *     round-commit record followed by commit() — the fsync'd commit
 *     point. Every snapshot_every rounds the owner writes a new
 *     snapshot, which atomically replaces the old one and truncates
 *     the journal (the snapshot subsumes it).
 *   - Recovery calls load() (read-only: a crash during recovery leaves
 *     the directory untouched and recovery simply restarts), replays
 *     the journal tail, and only then calls open() + write_snapshot()
 *     to re-anchor the log at the recovered state.
 */
#ifndef EF_RECOVER_LOG_H_
#define EF_RECOVER_LOG_H_

#include <cstdint>
#include <string>

#include "recover/codec.h"
#include "recover/journal.h"

namespace ef::recover {

class DurableLog
{
  public:
    /** snapshot/journal file names inside a journal directory. */
    static std::string snapshot_path(const std::string &dir);
    static std::string journal_path(const std::string &dir);

    /** True when `dir` holds a snapshot to recover from. */
    static bool recoverable(const std::string &dir);

    /**
     * Read-only recovery load: verified snapshot payload plus every
     * valid journal record (torn tails reported via contents->tail).
     * Non-ok on unreadable/corrupt snapshot or a structurally bad
     * journal head.
     */
    static Status load(const std::string &dir, std::string *snapshot,
                       JournalContents *contents);

    /**
     * Start (or restart) writing under `dir`: creates the directory if
     * needed and truncates the journal. The caller must follow up with
     * write_snapshot() of its current state before appending deltas.
     */
    Status open(const std::string &dir);

    /**
     * Reopen for appending after a recovery load, keeping the replayed
     * journal records in place. `existing_bytes` is the reader's
     * JournalContents::valid_bytes — any torn tail beyond it is chopped
     * off before new records land. Until the caller's next
     * write_snapshot(), the on-disk state (old snapshot + full journal)
     * stays recoverable, so a crash before that snapshot loses nothing.
     */
    Status open_existing(const std::string &dir,
                         std::uint64_t existing_bytes);

    /** Atomically replace the snapshot and truncate the journal. */
    Status write_snapshot(const std::string &payload);

    /** Append one delta record (durable at the next commit()). */
    Status append(RecordKind kind, const std::string &body);

    /** fsync'd commit point. */
    Status commit();

    bool is_open() const { return journal_.is_open(); }
    const std::string &dir() const { return dir_; }
    std::uint64_t journal_records() const { return journal_.records(); }
    std::uint64_t last_snapshot_bytes() const
    {
        return last_snapshot_bytes_;
    }

  private:
    std::string dir_;
    JournalWriter journal_;
    std::uint64_t last_snapshot_bytes_ = 0;
};

}  // namespace ef::recover

#endif  // EF_RECOVER_LOG_H_

/**
 * @file
 * Byte codec and typed error surface for the durability subsystem.
 *
 * Snapshots and journal records are encoded with a tiny explicit
 * little-endian codec (no struct dumps, no padding, no endianness
 * surprises) so the on-disk format is portable and versionable. The
 * decoder is written to be safe against arbitrary bytes: every read is
 * bounds-checked, counts are sanity-capped against the remaining input,
 * and failure is reported through a sticky flag plus a typed Status —
 * corrupt input can never index out of bounds or abort the process.
 */
#ifndef EF_RECOVER_CODEC_H_
#define EF_RECOVER_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ef::recover {

/** Failure classes surfaced by snapshot/journal load paths. */
enum class ErrorCode {
    kOk = 0,
    /** open/read/write/rename/fsync failed at the OS level. */
    kIoError,
    /** File does not start with the expected magic number. */
    kBadMagic,
    /** Magic matched but the format version is unsupported. */
    kBadVersion,
    /** Stored FNV-1a checksum does not match the payload bytes. */
    kChecksumMismatch,
    /** File ends mid-record or mid-field (torn write). */
    kTruncated,
    /** Record framing or payload structure is malformed. */
    kBadRecord,
    /** Decoded state is incompatible with the running configuration. */
    kStateMismatch,
};

/** Stable lowercase name for an ErrorCode ("checksum-mismatch", ...). */
const char *error_code_name(ErrorCode code);

/**
 * Typed result of a durability operation. `record` and `offset` locate
 * the failure inside a journal (0-based record index, byte offset) when
 * known; -1 otherwise. Never carries partial state: callers must treat
 * any !ok() status as "the operation did not happen".
 */
struct Status
{
    ErrorCode code = ErrorCode::kOk;
    std::string message;
    std::int64_t record = -1;
    std::int64_t offset = -1;

    bool ok() const { return code == ErrorCode::kOk; }

    static Status
    error(ErrorCode code, std::string message, std::int64_t record = -1,
          std::int64_t offset = -1)
    {
        return Status{code, std::move(message), record, offset};
    }

    /** One-line human-readable rendering with record/offset context. */
    std::string to_string() const;
};

/** Append-only little-endian encoder over an owned byte buffer. */
class Encoder
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Encode a double by bit pattern (bit-exact round trip). */
    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    const std::string &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked reader over a borrowed byte buffer. All reads return
 * false (and leave the output untouched) once the input underruns or a
 * structural check fails; the failure is sticky, so a decode routine
 * can issue all its reads and test ok() once at the end.
 */
class Decoder
{
  public:
    Decoder(const void *data, std::size_t size)
        : data_(static_cast<const std::uint8_t *>(data)), size_(size)
    {
    }

    explicit Decoder(const std::string &bytes)
        : Decoder(bytes.data(), bytes.size())
    {
    }

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool empty() const { return pos_ == size_; }

    /** Mark the decode failed (structural/semantic error in caller). */
    void
    fail()
    {
        ok_ = false;
    }

    bool
    u8(std::uint8_t *v)
    {
        if (!take(1))
            return false;
        *v = data_[pos_ - 1];
        return true;
    }

    bool
    u32(std::uint32_t *v)
    {
        if (!take(4))
            return false;
        std::uint32_t out = 0;
        for (int i = 0; i < 4; ++i)
            out |= static_cast<std::uint32_t>(data_[pos_ - 4 + i])
                   << (8 * i);
        *v = out;
        return true;
    }

    bool
    u64(std::uint64_t *v)
    {
        if (!take(8))
            return false;
        std::uint64_t out = 0;
        for (int i = 0; i < 8; ++i)
            out |= static_cast<std::uint64_t>(data_[pos_ - 8 + i])
                   << (8 * i);
        *v = out;
        return true;
    }

    bool
    i64(std::int64_t *v)
    {
        std::uint64_t raw = 0;
        if (!u64(&raw))
            return false;
        *v = static_cast<std::int64_t>(raw);
        return true;
    }

    bool
    f64(double *v)
    {
        std::uint64_t bits = 0;
        if (!u64(&bits))
            return false;
        std::memcpy(v, &bits, sizeof(bits));
        return true;
    }

    bool
    boolean(bool *v)
    {
        std::uint8_t raw = 0;
        if (!u8(&raw))
            return false;
        if (raw > 1) {
            ok_ = false;
            return false;
        }
        *v = raw != 0;
        return true;
    }

    bool
    str(std::string *s)
    {
        std::uint64_t len = 0;
        if (!u64(&len))
            return false;
        if (len > remaining()) {
            ok_ = false;
            return false;
        }
        s->assign(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<std::size_t>(len));
        pos_ += static_cast<std::size_t>(len);
        return true;
    }

    /**
     * Read an element count that is about to drive a loop of reads of
     * at least min_elem_bytes each. Rejects counts that could not
     * possibly fit in the remaining input, so a corrupted length can
     * never cause an attacker-controlled allocation or spin.
     */
    bool
    count(std::uint64_t *n, std::size_t min_elem_bytes)
    {
        if (!u64(n))
            return false;
        if (min_elem_bytes == 0)
            min_elem_bytes = 1;
        if (*n > remaining() / min_elem_bytes) {
            ok_ = false;
            return false;
        }
        return true;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || remaining() < n) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace ef::recover

#endif  // EF_RECOVER_CODEC_H_

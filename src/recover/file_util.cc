#include "recover/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace ef::recover {

Status
ensure_dir(const std::string &dir)
{
    if (dir.empty())
        return Status::error(ErrorCode::kIoError,
                             "journal directory path is empty");
    // Create each path component in turn (mkdir -p).
    for (std::size_t i = 1; i <= dir.size(); ++i) {
        if (i != dir.size() && dir[i] != '/')
            continue;
        std::string prefix = dir.substr(0, i);
        if (prefix.empty() || prefix == "/")
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return Status::error(ErrorCode::kIoError,
                                 "cannot create directory '" + prefix +
                                     "': " + std::strerror(errno));
    }
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return Status::error(ErrorCode::kIoError,
                             "'" + dir + "' is not a directory");
    return Status{};
}

Status
read_whole_file(const std::string &path, std::string *out)
{
    out->clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::error(ErrorCode::kIoError,
                             "cannot open '" + path +
                                 "': " + std::strerror(errno));
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
        out->clear();
        return Status::error(ErrorCode::kIoError,
                             "read error on '" + path +
                                 "': " + std::strerror(errno));
    }
    return Status{};
}

Status
fsync_parent_dir(const std::string &path)
{
    std::string dir = ".";
    std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos)
        dir = slash == 0 ? "/" : path.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return Status::error(ErrorCode::kIoError,
                             "cannot open directory '" + dir +
                                 "': " + std::strerror(errno));
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok)
        return Status::error(ErrorCode::kIoError,
                             "fsync of directory '" + dir +
                                 "' failed: " + std::strerror(errno));
    return Status{};
}

bool
file_exists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace ef::recover

/**
 * @file
 * Versioned, checksummed snapshot files with atomic replacement.
 *
 * A snapshot is an opaque payload (the owner encodes full scheduler or
 * simulator state through recover::Encoder) wrapped in a fixed header:
 *
 *     [u32 magic "EFSN"] [u32 version] [u64 payload_len]
 *     [u64 fnv1a(payload)] [payload bytes]
 *
 * Writes go to `<path>.tmp`, are flushed and fsync'd, then renamed over
 * the destination, so a crash mid-write can never destroy the previous
 * snapshot: readers see either the old complete file or the new one.
 * Reads verify magic, version, length, and checksum before returning a
 * byte of payload, and report failures as typed recover::Status values
 * instead of aborting — a corrupt snapshot is an input error, not a
 * programming error.
 */
#ifndef EF_RECOVER_SNAPSHOT_H_
#define EF_RECOVER_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "recover/codec.h"

namespace ef::recover {

/** "EFSN" little-endian: ElasticFlow SNapshot. */
constexpr std::uint32_t kSnapshotMagic = 0x4e534645u;
constexpr std::uint32_t kSnapshotVersion = 1;

/**
 * Atomically replace `path` with a snapshot wrapping `payload`.
 * fsyncs the temp file (and the containing directory) before the
 * rename so the bytes are durable at return.
 */
Status write_snapshot_file(const std::string &path,
                           const std::string &payload);

/**
 * Load and verify the snapshot at `path` into `*payload`.
 * On any failure `*payload` is left empty and the returned status
 * carries the failing byte offset where applicable.
 */
Status read_snapshot_file(const std::string &path, std::string *payload);

}  // namespace ef::recover

#endif  // EF_RECOVER_SNAPSHOT_H_

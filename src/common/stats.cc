#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ef {

void
SampleStats::add(double value)
{
    samples_.push_back(value);
    sum_ += value;
}

double
SampleStats::mean() const
{
    EF_CHECK(!samples_.empty());
    return sum_ / static_cast<double>(samples_.size());
}

double
SampleStats::min() const
{
    EF_CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    EF_CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleStats::stddev() const
{
    EF_CHECK(!samples_.empty());
    double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
SampleStats::percentile(double pct) const
{
    EF_CHECK(!samples_.empty());
    EF_CHECK(pct >= 0.0 && pct <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void
StepSeries::record(double time, double value)
{
    if (!times_.empty()) {
        EF_CHECK_MSG(time >= times_.back(),
                     "StepSeries times must be non-decreasing");
        if (time == times_.back()) {
            values_.back() = value;  // overwrite same-instant sample
            return;
        }
        if (values_.back() == value)
            return;  // run-length compress
    }
    times_.push_back(time);
    values_.push_back(value);
}

double
StepSeries::value_at(double time) const
{
    if (times_.empty() || time < times_.front())
        return 0.0;
    auto it = std::upper_bound(times_.begin(), times_.end(), time);
    std::size_t idx = static_cast<std::size_t>(it - times_.begin()) - 1;
    return values_[idx];
}

double
StepSeries::time_average(double t0, double t1) const
{
    EF_CHECK(t1 > t0);
    if (times_.empty())
        return 0.0;
    double acc = 0.0;
    double cursor = t0;
    while (cursor < t1) {
        double v = value_at(cursor);
        // Next change point after cursor.
        auto it = std::upper_bound(times_.begin(), times_.end(), cursor);
        double next = (it == times_.end()) ? t1 : std::min(*it, t1);
        if (next <= cursor)
            break;
        acc += v * (next - cursor);
        cursor = next;
    }
    return acc / (t1 - t0);
}

std::vector<double>
StepSeries::resample(double t0, double t1, std::size_t buckets) const
{
    EF_CHECK(buckets > 0 && t1 > t0);
    std::vector<double> out(buckets, 0.0);
    double width = (t1 - t0) / static_cast<double>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
        double lo = t0 + width * static_cast<double>(b);
        out[b] = time_average(lo, lo + width);
    }
    return out;
}

}  // namespace ef

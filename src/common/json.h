/**
 * @file
 * Minimal JSON emission and validation.
 *
 * JsonWriter builds syntactically correct JSON with deterministic
 * formatting (fixed-precision doubles, escaped strings, no locale
 * dependence), so exported artifacts — Chrome traces, run reports —
 * are byte-stable across runs and platforms. json_validate is a small
 * recursive-descent syntax checker used by tests to prove an exporter
 * emits well-formed output without pulling in a JSON library.
 */
#ifndef EF_COMMON_JSON_H_
#define EF_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ef {

/** Escape @p text for inclusion inside a JSON string literal. */
std::string json_escape(std::string_view text);

/**
 * Streaming JSON builder. Containers are opened/closed explicitly;
 * the writer inserts commas and enforces key/value alternation in
 * objects via EF_CHECK. Doubles are emitted with up to 6 significant
 * fractional digits (trailing zeros trimmed); non-finite doubles are
 * emitted as null, matching what strict parsers accept.
 */
class JsonWriter
{
  public:
    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Object key; must be followed by exactly one value/container. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(bool b);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &null();

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &kv(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** The finished document; all containers must be closed. */
    std::string str() const;

  private:
    enum class Frame { kObject, kArray };
    void before_value();
    void before_key();

    std::string out_;
    std::vector<Frame> stack_;
    /** Number of values already emitted in each open container. */
    std::vector<std::size_t> counts_;
    bool key_pending_ = false;
};

/**
 * Syntax-check a complete JSON document. Returns true iff @p text is
 * one valid JSON value with nothing but whitespace after it; on
 * failure, *error (if non-null) describes the first problem and the
 * byte offset where it was found.
 */
bool json_validate(std::string_view text, std::string *error = nullptr);

}  // namespace ef

#endif  // EF_COMMON_JSON_H_

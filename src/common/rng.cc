#include "common/rng.h"

#include <algorithm>
#include <sstream>

namespace ef {

std::string
Rng::engine_state() const
{
    std::ostringstream out;
    out << engine_;
    return out.str();
}

void
Rng::restore(const std::string &state, std::uint64_t draws,
             std::uint64_t forks)
{
    std::istringstream in(state);
    in >> engine_;
    EF_CHECK_MSG(!in.fail(), "malformed Rng engine state");
    draws_ = draws;
    fork_count_ = forks;
}

Rng
Rng::fork()
{
    // Mix the parent seed with a per-fork counter through splitmix64 so
    // children are decorrelated from both the parent and each other.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (++fork_count_);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return Rng(z);
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    ++draws_;
    EF_CHECK_MSG(lo <= hi, "uniform_int(" << lo << ", " << hi << ")");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniform_real(double lo, double hi)
{
    ++draws_;
    EF_CHECK_MSG(lo <= hi, "uniform_real(" << lo << ", " << hi << ")");
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::exponential(double rate)
{
    ++draws_;
    EF_CHECK_MSG(rate > 0, "exponential rate must be positive: " << rate);
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
}

double
Rng::log_normal(double mu, double sigma)
{
    ++draws_;
    std::lognormal_distribution<double> dist(mu, sigma);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    ++draws_;
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

bool
Rng::flip(double probability)
{
    ++draws_;
    EF_CHECK(probability >= 0.0 && probability <= 1.0);
    std::bernoulli_distribution dist(probability);
    return dist(engine_);
}

std::size_t
Rng::weighted_index(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        EF_CHECK_MSG(w >= 0.0, "negative weight " << w);
        total += w;
    }
    EF_CHECK_MSG(total > 0.0, "weighted_index needs a positive weight");
    double r = uniform_real(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

}  // namespace ef

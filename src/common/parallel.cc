#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace ef {

/**
 * Generation-stamped dispatch. Each parallel_for publishes one "loop
 * generation" (job pointer, index count) under the mutex and wakes the
 * workers; indices are then claimed lock-free from an atomic cursor.
 * The caller may not return — and therefore may not destroy the
 * `fn` closure or start the next generation — until every worker has
 * both *arrived* at this generation and *left* its index loop, which
 * closes the classic straggler race where a slow worker could observe
 * the next loop's cursor while still holding the previous loop's job
 * pointer.
 */
struct ThreadPool::Impl
{
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable work_ready;
    std::condition_variable work_done;

    // Loop state: written by the caller under `mutex` before a
    // generation is published, constant until the loop joins.
    const std::function<void(int)> *job = nullptr;
    int count = 0;
    std::uint64_t generation = 0;
    bool stop = false;
    bool in_loop = false;

    std::atomic<int> next{0};       ///< index claim cursor
    std::atomic<int> completed{0};  ///< finished fn(i) calls
    int arrived = 0;  ///< workers that observed this generation
    int running = 0;  ///< workers inside the current index loop

    void run_indices(const std::function<void(int)> &fn, int n)
    {
        while (true) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            fn(i);
            completed.fetch_add(1, std::memory_order_relaxed);
        }
    }

    void worker_main()
    {
        std::uint64_t seen = 0;
        while (true) {
            const std::function<void(int)> *fn = nullptr;
            int n = 0;
            {
                std::unique_lock<std::mutex> lock(mutex);
                work_ready.wait(lock, [&] {
                    return stop || generation != seen;
                });
                if (stop)
                    return;
                seen = generation;
                fn = job;
                n = count;
                ++arrived;
                ++running;
            }
            run_indices(*fn, n);
            {
                std::lock_guard<std::mutex> lock(mutex);
                --running;
            }
            work_done.notify_one();
        }
    }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl)
{
    const int workers = threads > 1 ? threads - 1 : 0;
    impl_->workers.reserve(workers);
    for (int i = 0; i < workers; ++i)
        impl_->workers.emplace_back([this] { impl_->worker_main(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_ready.notify_all();
    for (std::thread &worker : impl_->workers)
        worker.join();
}

int
ThreadPool::threads() const
{
    return static_cast<int>(impl_->workers.size()) + 1;
}

void
ThreadPool::parallel_for(int count, const std::function<void(int)> &fn)
{
    if (count <= 0)
        return;
    if (impl_->workers.empty() || count == 1) {
        for (int i = 0; i < count; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        EF_CHECK_MSG(!impl_->in_loop,
                     "ThreadPool::parallel_for is not reentrant");
        impl_->in_loop = true;
        impl_->job = &fn;
        impl_->count = count;
        impl_->next.store(0, std::memory_order_relaxed);
        impl_->completed.store(0, std::memory_order_relaxed);
        impl_->arrived = 0;
        impl_->running = 0;
        ++impl_->generation;
    }
    impl_->work_ready.notify_all();

    impl_->run_indices(fn, count);

    {
        const int all = static_cast<int>(impl_->workers.size());
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->work_done.wait(lock, [&] {
            return impl_->arrived == all && impl_->running == 0;
        });
        EF_CHECK(impl_->completed.load(std::memory_order_relaxed) ==
                 count);
        impl_->in_loop = false;
        impl_->job = nullptr;
    }
}

int
ThreadPool::hardware_threads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<int>(n) : 1;
}

void
parallel_for(ThreadPool *pool, int count,
             const std::function<void(int)> &fn)
{
    if (pool == nullptr || pool->threads() <= 1) {
        for (int i = 0; i < count; ++i)
            fn(i);
        return;
    }
    pool->parallel_for(count, fn);
}

}  // namespace ef

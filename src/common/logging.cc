#include "common/logging.h"

#include <cstdio>

namespace ef {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
}

}  // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

std::optional<LogLevel>
log_level_from_name(std::string_view name)
{
    if (name == "debug")
        return LogLevel::kDebug;
    if (name == "info")
        return LogLevel::kInfo;
    if (name == "warn")
        return LogLevel::kWarn;
    if (name == "error")
        return LogLevel::kError;
    return std::nullopt;
}

void
log_message(LogLevel level, const std::string &msg)
{
    // One fprintf per line so concurrent writers (e.g. a test harness
    // running child processes) cannot interleave mid-line.
    std::fprintf(stderr, "[ef:%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace ef

#include "common/logging.h"

#include <iostream>

namespace ef {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
}

}  // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

void
log_message(LogLevel level, const std::string &msg)
{
    std::cerr << "[ef:" << level_name(level) << "] " << msg << "\n";
}

}  // namespace ef

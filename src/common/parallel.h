/**
 * @file
 * The only threading primitive in the tree: a fixed pool of worker
 * threads driving `parallel_for` index loops.
 *
 * Planner sharding (DESIGN.md §10) needs data parallelism without
 * giving up determinism, so the contract here is deliberately narrow:
 * `parallel_for(count, fn)` calls `fn(i)` exactly once for every
 * `i` in `[0, count)`, with `fn` required to touch only state owned by
 * index `i` (disjoint output slots, per-index scratch). Under that
 * discipline the result of a loop is a pure function of its inputs —
 * thread interleaving can reorder the *execution* of indices but never
 * their *effects*, because no two indices share mutable state and all
 * cross-index reduction happens sequentially on the caller after the
 * loop joins.
 *
 * Raw `<thread>` / `<mutex>` / `<atomic>` use anywhere else in `src/`
 * is rejected by the ef-lint `threading` rule; scheduler and simulator
 * logic must express concurrency through this interface only.
 */
#ifndef EF_COMMON_PARALLEL_H_
#define EF_COMMON_PARALLEL_H_

#include <functional>
#include <memory>

namespace ef {

/**
 * Fixed-size worker pool. Constructed once (threads are reused across
 * loops), joined on destruction. A pool of `threads <= 1` owns no
 * worker threads at all and runs every loop inline on the caller —
 * callers never need a special single-threaded code path.
 */
class ThreadPool
{
  public:
    /** @p threads is the total thread count *including* the calling
     *  thread: a pool built with `threads = 4` spawns 3 workers and
     *  the caller participates as the 4th. Values <= 1 spawn none. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads a loop runs on (workers + the calling thread). */
    int threads() const;

    /**
     * Run `fn(0) .. fn(count - 1)`, the caller participating, and
     * block until every index has completed. Indices are claimed
     * dynamically (an atomic cursor), so uneven per-index cost load
     * balances automatically. Not reentrant: `fn` must not call back
     * into the same pool.
     */
    void parallel_for(int count, const std::function<void(int)> &fn);

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static int hardware_threads();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Pool-optional loop: runs inline (plain sequential `for`) when
 * @p pool is null or single-threaded, otherwise on the pool. This is
 * the form planner code should use — concurrency stays a config knob,
 * never a structural requirement.
 */
void parallel_for(ThreadPool *pool, int count,
                  const std::function<void(int)> &fn);

}  // namespace ef

#endif  // EF_COMMON_PARALLEL_H_

#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace ef {
namespace {

bool
looks_numeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
              c == 'x')) {
            return false;
        }
    }
    return true;
}

}  // namespace

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    EF_CHECK(!header_.empty());
}

void
ConsoleTable::add_row(std::vector<std::string> row)
{
    EF_CHECK_MSG(row.size() == header_.size(),
                 "row width " << row.size() << " != header width "
                              << header_.size());
    rows_.push_back(std::move(row));
}

std::string
ConsoleTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row, bool align_right) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << "  ";
            bool right = align_right && looks_numeric(row[c]);
            std::size_t pad = widths[c] - row[c].size();
            if (right)
                out << std::string(pad, ' ') << row[c];
            else
                out << row[c] << std::string(pad, ' ');
        }
        out << '\n';
    };
    emit(header_, false);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row, true);
    return out.str();
}

std::string
format_double(double value, int decimals)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(decimals);
    out << value;
    return out.str();
}

std::string
format_percent(double fraction, int decimals)
{
    return format_double(fraction * 100.0, decimals) + "%";
}

std::string
render_bar_chart(const std::vector<std::string> &labels,
                 const std::vector<double> &values, int width)
{
    EF_CHECK(labels.size() == values.size());
    EF_CHECK(width > 0);
    double max_value = 0.0;
    std::size_t label_width = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        max_value = std::max(max_value, values[i]);
        label_width = std::max(label_width, labels[i].size());
    }
    std::ostringstream out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        int bars = 0;
        if (max_value > 0) {
            bars = static_cast<int>(
                std::lround(values[i] / max_value * width));
        }
        out << labels[i]
            << std::string(label_width - labels[i].size(), ' ') << " |"
            << std::string(static_cast<std::size_t>(std::max(bars, 0)), '#')
            << " " << format_double(values[i], 3) << '\n';
    }
    return out.str();
}

std::string
render_sparkline(const std::vector<double> &values, int height)
{
    EF_CHECK(height > 0);
    if (values.empty())
        return "(empty series)\n";
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    double span = hi - lo;
    std::ostringstream out;
    for (int row = height - 1; row >= 0; --row) {
        double threshold =
            lo + span * (static_cast<double>(row) + 0.5) /
                     static_cast<double>(height);
        out << format_double(
                   lo + span * (static_cast<double>(row) + 1.0) /
                            static_cast<double>(height), 1)
            << "\t|";
        for (double v : values)
            out << (almost_equal(span, 0.0) ? (row == 0 ? '#' : ' ')
                                            : (v >= threshold ? '#' : ' '));
        out << '\n';
    }
    out << "\t+" << std::string(values.size(), '-') << '\n';
    return out.str();
}

}  // namespace ef

/**
 * @file
 * Small numeric helpers used across the scheduler: power-of-two
 * arithmetic (worker counts are restricted to powers of two, §4.3) and
 * concavity utilities for scaling curves.
 */
#ifndef EF_COMMON_MATH_UTIL_H_
#define EF_COMMON_MATH_UTIL_H_

#include <vector>

#include "common/types.h"

namespace ef {

/** True iff @p value is a power of two (1, 2, 4, ...). */
bool is_power_of_two(GpuCount value);

/** Largest power of two ≤ @p value; 0 when value ≤ 0. */
GpuCount floor_power_of_two(GpuCount value);

/** Smallest power of two ≥ @p value; 1 when value ≤ 1. */
GpuCount ceil_power_of_two(GpuCount value);

/** floor(log2(value)) for value ≥ 1. */
int log2_floor(GpuCount value);

/** Exact log2 for a power of two. */
int log2_exact(GpuCount value);

/**
 * True iff the sequence y(x) sampled at strictly increasing points
 * @p xs is concave: successive chord slopes are non-increasing (within
 * @p tol of slope slack).
 */
bool is_concave(const std::vector<double> &xs, const std::vector<double> &ys,
                double tol = 1e-9);

/**
 * Upper concave envelope of y(x) at the same sample points: the least
 * concave majorant, computed with an Andrew-monotone-chain style upper
 * hull. Used to force analytic scaling curves into the concave regime
 * Algorithms 1–2 assume.
 */
std::vector<double> concave_envelope(const std::vector<double> &xs,
                                     const std::vector<double> &ys);

/** Clamp helper that also works for Time. */
double clamp(double value, double lo, double hi);

/** Relative difference |a-b| / max(|a|,|b|,eps). */
double relative_difference(double a, double b, double eps = 1e-12);

/**
 * Tolerant floating-point equality. ef-lint bans ==/!= on
 * floating-point expressions (rule float-eq) because exact comparison
 * on computed values is a classic hidden-nondeterminism trap; this is
 * the sanctioned replacement. True when |a-b| <= abs_tol (covers
 * denormals and sign-crossing near zero, where relative error is
 * meaningless) or |a-b| <= rel_tol * max(|a|,|b|). NaN never compares
 * equal to anything, including itself; equal infinities compare equal.
 */
bool almost_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12);

}  // namespace ef

#endif  // EF_COMMON_MATH_UTIL_H_

#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ef {

bool
is_power_of_two(GpuCount value)
{
    return value > 0 && (value & (value - 1)) == 0;
}

GpuCount
floor_power_of_two(GpuCount value)
{
    if (value <= 0)
        return 0;
    GpuCount p = 1;
    while (p * 2 <= value)
        p *= 2;
    return p;
}

GpuCount
ceil_power_of_two(GpuCount value)
{
    if (value <= 1)
        return 1;
    GpuCount p = 1;
    while (p < value)
        p *= 2;
    return p;
}

int
log2_floor(GpuCount value)
{
    EF_CHECK(value >= 1);
    int k = 0;
    while ((GpuCount(1) << (k + 1)) <= value)
        ++k;
    return k;
}

int
log2_exact(GpuCount value)
{
    EF_CHECK_MSG(is_power_of_two(value), value << " is not a power of two");
    return log2_floor(value);
}

bool
is_concave(const std::vector<double> &xs, const std::vector<double> &ys,
           double tol)
{
    EF_CHECK(xs.size() == ys.size());
    if (xs.size() < 3)
        return true;
    double prev_slope = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < xs.size(); ++i) {
        double dx = xs[i] - xs[i - 1];
        EF_CHECK_MSG(dx > 0, "x samples must be strictly increasing");
        double slope = (ys[i] - ys[i - 1]) / dx;
        if (slope > prev_slope + tol)
            return false;
        prev_slope = slope;
    }
    return true;
}

std::vector<double>
concave_envelope(const std::vector<double> &xs, const std::vector<double> &ys)
{
    EF_CHECK(xs.size() == ys.size());
    const std::size_t n = xs.size();
    if (n < 3)
        return ys;

    // Upper convex hull of the points (monotone chain). Points on the
    // hull keep their value; points below it are lifted onto the hull
    // segment that spans them.
    auto cross = [&](std::size_t o, std::size_t a, std::size_t b) {
        return (xs[a] - xs[o]) * (ys[b] - ys[o]) -
               (ys[a] - ys[o]) * (xs[b] - xs[o]);
    };
    std::vector<std::size_t> hull;
    for (std::size_t i = 0; i < n; ++i) {
        while (hull.size() >= 2 &&
               cross(hull[hull.size() - 2], hull.back(), i) >= 0) {
            hull.pop_back();
        }
        hull.push_back(i);
    }

    std::vector<double> out(n);
    std::size_t seg = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (seg + 1 < hull.size() && xs[hull[seg + 1]] < xs[i])
            ++seg;
        if (hull[seg] == i || seg + 1 >= hull.size()) {
            out[i] = std::max(ys[i], ys[hull[seg]]);
            continue;
        }
        std::size_t a = hull[seg];
        std::size_t b = hull[seg + 1];
        double t = (xs[i] - xs[a]) / (xs[b] - xs[a]);
        out[i] = ys[a] + t * (ys[b] - ys[a]);
        out[i] = std::max(out[i], ys[i]);
    }
    return out;
}

double
clamp(double value, double lo, double hi)
{
    return std::min(std::max(value, lo), hi);
}

double
relative_difference(double a, double b, double eps)
{
    double denom = std::max({std::fabs(a), std::fabs(b), eps});
    return std::fabs(a - b) / denom;
}

bool
almost_equal(double a, double b, double rel_tol, double abs_tol)
{
    if (std::isnan(a) || std::isnan(b))
        return false;
    if (std::isinf(a) || std::isinf(b)) {
        // Equal infinities are exactly equal; anything else is not
        // within any tolerance of an infinity.
        return a == b;
    }
    double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace ef

/**
 * @file
 * Minimal leveled logger.
 *
 * Benches and examples keep the default (warn) so their stdout stays a
 * clean reproduction of the paper's tables; tests raise the level when
 * debugging. Not thread-safe by design — ElasticFlow's simulator is
 * single-threaded and deterministic.
 */
#ifndef EF_COMMON_LOGGING_H_
#define EF_COMMON_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace ef {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Global log threshold; messages below it are discarded. */
LogLevel log_level();
void set_log_level(LogLevel level);

/** Parse "debug"/"info"/"warn"/"error"; nullopt on anything else. */
std::optional<LogLevel> log_level_from_name(std::string_view name);

/** Emit one log line (no layout guarantees beyond "level: message"). */
void log_message(LogLevel level, const std::string &msg);

}  // namespace ef

#define EF_LOG(level, msg_expr)                                             \
    do {                                                                    \
        if (static_cast<int>(level) >=                                      \
            static_cast<int>(::ef::log_level())) {                          \
            std::ostringstream ef_log_oss_;                                 \
            ef_log_oss_ << msg_expr;                                        \
            ::ef::log_message(level, ef_log_oss_.str());                    \
        }                                                                   \
    } while (0)

#define EF_DEBUG(msg_expr) EF_LOG(::ef::LogLevel::kDebug, msg_expr)
#define EF_INFO(msg_expr) EF_LOG(::ef::LogLevel::kInfo, msg_expr)
#define EF_WARN(msg_expr) EF_LOG(::ef::LogLevel::kWarn, msg_expr)
#define EF_ERROR(msg_expr) EF_LOG(::ef::LogLevel::kError, msg_expr)

#endif  // EF_COMMON_LOGGING_H_

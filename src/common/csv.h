/**
 * @file
 * Tiny CSV reader/writer: enough to load real job traces (submit time,
 * GPU count, duration) and to dump bench results for external plotting.
 * Supports quoted fields with embedded commas; does not support
 * multi-line fields (traces never contain them).
 */
#ifndef EF_COMMON_CSV_H_
#define EF_COMMON_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ef {

/** One parsed CSV table: a header row plus data rows of strings. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /** Index of @p column in the header, or -1 if absent. */
    int column_index(const std::string &column) const;

    /** Cell accessor with bounds checks; aborts via EF_FATAL_IF on miss. */
    const std::string &cell(std::size_t row, const std::string &column) const;
};

/** Parse CSV text (first row is the header). */
CsvTable parse_csv(const std::string &text);

/** Load and parse a CSV file. */
CsvTable load_csv(const std::string &path);

/**
 * Parse a whole field as an integer; aborts via EF_FATAL_IF with
 * @p context (e.g. "trace line 7, column 'iterations'") when the field
 * is empty, has trailing garbage, or overflows.
 */
std::int64_t csv_to_int(const std::string &field,
                        const std::string &context);

/** Parse a whole field as a real number; same error contract. */
double csv_to_double(const std::string &field, const std::string &context);

/** Serialize rows (quoting fields that need it). */
std::string to_csv(const std::vector<std::string> &header,
                   const std::vector<std::vector<std::string>> &rows);

/** Write CSV text to a file (overwrites). */
void save_csv(const std::string &path, const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows);

}  // namespace ef

#endif  // EF_COMMON_CSV_H_

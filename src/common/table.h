/**
 * @file
 * Console table and bar-chart rendering for the bench binaries, so each
 * bench prints the same rows/series the paper's tables and figures
 * report, readable directly in a terminal.
 */
#ifndef EF_COMMON_TABLE_H_
#define EF_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace ef {

/** Column-aligned text table with a header row. */
class ConsoleTable
{
  public:
    explicit ConsoleTable(std::vector<std::string> header);

    /** Append a data row (must match the header width). */
    void add_row(std::vector<std::string> row);

    /** Render with padded, right-aligned numeric-looking columns. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed decimals (bench output helper). */
std::string format_double(double value, int decimals = 2);

/** Format a fraction as a percentage string like "83.3%". */
std::string format_percent(double fraction, int decimals = 1);

/**
 * Render a horizontal ASCII bar chart: one line per (label, value),
 * bars scaled to @p width characters at the maximum value.
 */
std::string render_bar_chart(const std::vector<std::string> &labels,
                             const std::vector<double> &values,
                             int width = 40);

/**
 * Render a compact ASCII line plot of a series (used for the timeline
 * figures): values bucketed into @p height character rows.
 */
std::string render_sparkline(const std::vector<double> &values,
                             int height = 8);

}  // namespace ef

#endif  // EF_COMMON_TABLE_H_

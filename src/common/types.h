/**
 * @file
 * Fundamental scalar types shared by every ElasticFlow module.
 *
 * Time is modelled as continuous seconds (double) since the start of an
 * experiment; the scheduler quantizes time into slots internally but the
 * simulator and all public interfaces use seconds.
 */
#ifndef EF_COMMON_TYPES_H_
#define EF_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace ef {

/** Continuous simulation time in seconds since experiment start. */
using Time = double;

/** Number of GPUs (whole devices; ElasticFlow does not share GPUs). */
using GpuCount = int;

/** Unique identifier of a training job within one experiment. */
using JobId = std::int64_t;

/** Sentinel for "no job". */
inline constexpr JobId kInvalidJob = -1;

/** Sentinel time for "never" (used for best-effort job deadlines). */
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/**
 * True iff @p t is the "never" sentinel. Use this instead of comparing
 * against kTimeInfinity with ==/!= (banned by ef-lint rule float-eq):
 * >= is exact for the sentinel and also absorbs values that overflowed
 * past any representable finite time.
 */
inline constexpr bool is_unbounded(Time t) { return t >= kTimeInfinity; }

/** Seconds in common calendar units, for readable experiment configs. */
inline constexpr Time kMinute = 60.0;
inline constexpr Time kHour = 3600.0;
inline constexpr Time kDay = 86400.0;

}  // namespace ef

#endif  // EF_COMMON_TYPES_H_

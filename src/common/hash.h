/**
 * @file
 * FNV-1a 64-bit hashing for the runtime determinism auditor.
 *
 * The auditor folds all determinism-relevant scheduler + simulator
 * state (job queue, allocations, event clock, RNG cursors) into one
 * digest at every replan; two runs of the same trace and config must
 * produce identical digests or a hidden nondeterminism source crept
 * in. FNV-1a is used because it is trivially portable, endianness is
 * pinned by feeding bytes LSB-first, and speed matters more than
 * collision resistance here (a divergence flips essentially every
 * subsequent sample, so even a weak hash catches it).
 */
#ifndef EF_COMMON_HASH_H_
#define EF_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace ef {

/** Incremental FNV-1a 64-bit hasher with canonical (LSB-first) input. */
class Fnv1a
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    /** Digest of everything mixed in so far. */
    std::uint64_t digest() const { return state_; }

    void
    byte(std::uint8_t b)
    {
        state_ = (state_ ^ b) * kPrime;
    }

    void
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i)
            byte(p[i]);
    }

    /** Mix a 64-bit value, LSB first (endianness-independent). */
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /**
     * Mix a double by bit pattern. Bit-exact on purpose: the auditor
     * asserts byte-identical replay, so even an ULP of drift (or a
     * -0.0 vs +0.0 flip) is a real divergence worth catching.
     */
    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Mix a length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

  private:
    std::uint64_t state_ = kOffsetBasis;
};

}  // namespace ef

#endif  // EF_COMMON_HASH_H_

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ef {

std::string
json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::before_value()
{
    if (stack_.empty()) {
        EF_CHECK_MSG(out_.empty(), "JSON document already complete");
        return;
    }
    if (stack_.back() == Frame::kObject) {
        EF_CHECK_MSG(key_pending_, "object value needs a key first");
        key_pending_ = false;
        return;
    }
    if (counts_.back() > 0)
        out_ += ',';
    ++counts_.back();
}

void
JsonWriter::before_key()
{
    EF_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                 "key() outside an object");
    EF_CHECK_MSG(!key_pending_, "two keys in a row");
    if (counts_.back() > 0)
        out_ += ',';
    ++counts_.back();
}

JsonWriter &
JsonWriter::begin_object()
{
    before_value();
    out_ += '{';
    stack_.push_back(Frame::kObject);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    EF_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject &&
                     !key_pending_,
                 "end_object() without a matching open object");
    out_ += '}';
    stack_.pop_back();
    counts_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    before_value();
    out_ += '[';
    stack_.push_back(Frame::kArray);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    EF_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                 "end_array() without a matching open array");
    out_ += ']';
    stack_.pop_back();
    counts_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    before_key();
    out_ += '"';
    out_ += json_escape(name);
    out_ += "\":";
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    before_value();
    out_ += '"';
    out_ += json_escape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(bool b)
{
    before_value();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    before_value();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    before_value();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    before_value();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    std::string text(buf);
    // Trim trailing zeros but keep one digit after the point, so the
    // token stays a JSON number ("1.0", not "1.").
    std::size_t last = text.find_last_not_of('0');
    if (text[last] == '.')
        ++last;
    text.erase(last + 1);
    out_ += text;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    before_value();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    EF_CHECK_MSG(stack_.empty(), "unclosed JSON container");
    EF_CHECK_MSG(!out_.empty(), "empty JSON document");
    return out_;
}

namespace {

/** Cursor over the document being validated. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &what)
    {
        if (error.empty()) {
            error = what + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void skip_ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool eat(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parse_literal(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) != lit)
            return fail("bad literal");
        pos += lit.size();
        return true;
    }

    bool parse_string()
    {
        if (!eat('"'))
            return fail("expected string");
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + static_cast<std::size_t>(i) >=
                                text.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text[pos + static_cast<std::size_t>(
                                              i)]))) {
                            return fail("bad \\u escape");
                        }
                    }
                    pos += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool parse_number()
    {
        std::size_t start = pos;
        if (eat('-')) {
        }
        if (!(pos < text.size() &&
              std::isdigit(static_cast<unsigned char>(text[pos])))) {
            return fail("expected digit");
        }
        // JSON forbids leading zeros: "0" is fine, "01" is not.
        if (text[pos] == '0' && pos + 1 < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[pos + 1]))) {
            return fail("leading zero in number");
        }
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        if (eat('.')) {
            if (!(pos < text.size() &&
                  std::isdigit(static_cast<unsigned char>(text[pos])))) {
                return fail("expected fraction digit");
            }
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-')) {
                ++pos;
            }
            if (!(pos < text.size() &&
                  std::isdigit(static_cast<unsigned char>(text[pos])))) {
                return fail("expected exponent digit");
            }
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
        }
        return pos > start;
    }

    bool parse_value(int depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        skip_ws();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            skip_ws();
            if (eat('}'))
                return true;
            for (;;) {
                skip_ws();
                if (!parse_string())
                    return false;
                skip_ws();
                if (!eat(':'))
                    return fail("expected ':'");
                if (!parse_value(depth + 1))
                    return false;
                skip_ws();
                if (eat(','))
                    continue;
                if (eat('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            skip_ws();
            if (eat(']'))
                return true;
            for (;;) {
                if (!parse_value(depth + 1))
                    return false;
                skip_ws();
                if (eat(','))
                    continue;
                if (eat(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return parse_string();
        if (c == 't')
            return parse_literal("true");
        if (c == 'f')
            return parse_literal("false");
        if (c == 'n')
            return parse_literal("null");
        return parse_number();
    }
};

}  // namespace

bool
json_validate(std::string_view text, std::string *error)
{
    Parser p;
    p.text = text;
    bool ok = p.parse_value(0);
    if (ok) {
        p.skip_ws();
        if (p.pos != text.size()) {
            ok = p.fail("trailing characters");
        }
    }
    if (!ok && error != nullptr)
        *error = p.error;
    return ok;
}

}  // namespace ef

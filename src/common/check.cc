#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ef {
namespace detail {

struct CheckMessage::Impl
{
    std::ostringstream oss;
};

CheckMessage::CheckMessage() : impl_(new Impl) {}

CheckMessage::~CheckMessage()
{
    delete impl_;
}

std::ostream &
CheckMessage::stream()
{
    return impl_->oss;
}

std::string
CheckMessage::str() const
{
    return impl_->oss.str();
}

void
check_failed(const char *kind, const char *file, int line,
             const char *expr, const std::string &msg)
{
    std::fprintf(stderr, "%s at %s:%d: %s", kind, file, line, expr);
    if (!msg.empty())
        std::fprintf(stderr, " — %s", msg.c_str());
    std::fputc('\n', stderr);
    // abort() raises SIGABRT without running stream destructors or
    // atexit handlers; flush so the message is not lost in a buffered
    // CI log pipe.
    std::fflush(stderr);
    std::abort();
}

}  // namespace detail
}  // namespace ef

/**
 * @file
 * Checked assertions.
 *
 * EF_CHECK is for conditions that indicate a bug in ElasticFlow itself
 * (gem5's panic()); EF_FATAL_IF is for user errors such as invalid
 * configuration (gem5's fatal()). Both are always on, including in
 * release builds: scheduler invariants are cheap relative to simulation
 * work and silent corruption of an allocation plan is much worse than an
 * abort. EF_DCHECK is for hot-path invariants too expensive to keep in
 * release builds; it compiles out (condition unevaluated) under NDEBUG.
 *
 * This header is included almost everywhere, so it deliberately pulls
 * in only <ostream>/<string>: the string-stream machinery and the
 * abort path live behind CheckMessage / check_failed in check.cc.
 */
#ifndef EF_COMMON_CHECK_H_
#define EF_COMMON_CHECK_H_

#include <ostream>
#include <string>

namespace ef {
namespace detail {

/**
 * Accumulates the streamed message of EF_CHECK_MSG / EF_FATAL_IF.
 * The backing string stream is hidden behind a pimpl so that this
 * widely-included header does not drag <sstream> into every
 * translation unit.
 */
class CheckMessage
{
  public:
    CheckMessage();
    ~CheckMessage();

    CheckMessage(const CheckMessage &) = delete;
    CheckMessage &operator=(const CheckMessage &) = delete;

    /** Stream the message parts are appended to. */
    std::ostream &stream();
    /** The message accumulated so far. */
    std::string str() const;

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Print the failure to stderr, flush it (so the message survives CI
 * log buffering even though abort() skips atexit handlers), and abort.
 */
[[noreturn]] void check_failed(const char *kind, const char *file, int line,
                               const char *expr, const std::string &msg);

}  // namespace detail
}  // namespace ef

/** Abort if @p cond is false; indicates an internal ElasticFlow bug. */
#define EF_CHECK(cond)                                                      \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ef::detail::check_failed("EF_CHECK failed", __FILE__,         \
                                       __LINE__, #cond, std::string());     \
        }                                                                   \
    } while (0)

/** Abort with a streamed message if @p cond is false. */
#define EF_CHECK_MSG(cond, msg_expr)                                        \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ef::detail::CheckMessage ef_check_msg_;                       \
            ef_check_msg_.stream() << msg_expr;                             \
            ::ef::detail::check_failed("EF_CHECK failed", __FILE__,         \
                                       __LINE__, #cond,                     \
                                       ef_check_msg_.str());                \
        }                                                                   \
    } while (0)

/** Abort if @p cond is true; indicates invalid user input/configuration. */
#define EF_FATAL_IF(cond, msg_expr)                                         \
    do {                                                                    \
        if (cond) {                                                         \
            ::ef::detail::CheckMessage ef_check_msg_;                       \
            ef_check_msg_.stream() << msg_expr;                             \
            ::ef::detail::check_failed("fatal", __FILE__, __LINE__, #cond,  \
                                       ef_check_msg_.str());                \
        }                                                                   \
    } while (0)

/**
 * Debug-only invariants for hot paths (per-candidate planner loops,
 * per-event simulator bookkeeping) where an always-on EF_CHECK would
 * show up in profiles. Under NDEBUG the condition is NOT evaluated
 * (sizeof keeps it an unevaluated operand, which still suppresses
 * unused-variable warnings), so it must be side-effect free — ef-lint
 * rule check-side-effect enforces that.
 */
#ifndef NDEBUG
#define EF_DCHECK(cond) EF_CHECK(cond)
#define EF_DCHECK_MSG(cond, msg_expr) EF_CHECK_MSG(cond, msg_expr)
#else
#define EF_DCHECK(cond)                                                     \
    do {                                                                    \
        (void)sizeof(!(cond));                                              \
    } while (0)
#define EF_DCHECK_MSG(cond, msg_expr)                                       \
    do {                                                                    \
        (void)sizeof(!(cond));                                              \
    } while (0)
#endif

#endif  // EF_COMMON_CHECK_H_

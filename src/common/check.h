/**
 * @file
 * Checked assertions.
 *
 * EF_CHECK is for conditions that indicate a bug in ElasticFlow itself
 * (gem5's panic()); EF_FATAL_IF is for user errors such as invalid
 * configuration (gem5's fatal()). Both are always on, including in
 * release builds: scheduler invariants are cheap relative to simulation
 * work and silent corruption of an allocation plan is much worse than an
 * abort.
 */
#ifndef EF_COMMON_CHECK_H_
#define EF_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ef {
namespace detail {

[[noreturn]] inline void
check_failed(const char *kind, const char *file, int line,
             const char *expr, const std::string &msg)
{
    std::cerr << kind << " at " << file << ":" << line << ": " << expr;
    if (!msg.empty())
        std::cerr << " — " << msg;
    std::cerr << std::endl;
    std::abort();
}

}  // namespace detail
}  // namespace ef

/** Abort if @p cond is false; indicates an internal ElasticFlow bug. */
#define EF_CHECK(cond)                                                      \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ef::detail::check_failed("EF_CHECK failed", __FILE__,         \
                                       __LINE__, #cond, "");                \
        }                                                                   \
    } while (0)

/** Abort with a streamed message if @p cond is false. */
#define EF_CHECK_MSG(cond, msg_expr)                                        \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream ef_check_oss_;                               \
            ef_check_oss_ << msg_expr;                                      \
            ::ef::detail::check_failed("EF_CHECK failed", __FILE__,         \
                                       __LINE__, #cond,                     \
                                       ef_check_oss_.str());                \
        }                                                                   \
    } while (0)

/** Abort if @p cond is true; indicates invalid user input/configuration. */
#define EF_FATAL_IF(cond, msg_expr)                                         \
    do {                                                                    \
        if (cond) {                                                         \
            std::ostringstream ef_check_oss_;                               \
            ef_check_oss_ << msg_expr;                                      \
            ::ef::detail::check_failed("fatal", __FILE__, __LINE__, #cond,  \
                                       ef_check_oss_.str());                \
        }                                                                   \
    } while (0)

#endif  // EF_COMMON_CHECK_H_

/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * Every stochastic component (trace generation, deadline tightness,
 * model choice, test-case generation) draws through an Rng instance that
 * is explicitly seeded, so a whole experiment is a pure function of its
 * seed. Rng also offers fork(), which derives an independent child
 * stream, letting subsystems evolve without perturbing each other's
 * sequences.
 */
#ifndef EF_COMMON_RNG_H_
#define EF_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"

namespace ef {

/** Seeded pseudo-random stream with the distributions ElasticFlow needs. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /** Seed this stream was created with. */
    std::uint64_t seed() const { return seed_; }

    /** Derive an independent child stream (stable across calls). */
    Rng fork();

    /**
     * Number of draws taken from this stream so far (its "cursor").
     * Together with seed() this pins the stream's position: two runs
     * are in sync iff every stream has the same (seed, draws, forks).
     * Folded into the simulator's determinism state hash.
     */
    std::uint64_t draws() const { return draws_; }

    /** Number of child streams forked off so far. */
    std::uint64_t forks() const { return fork_count_; }

    /** Uniform integer in [lo, hi], inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniform_real(double lo, double hi);

    /** Standard exponential with the given rate (events per unit time). */
    double exponential(double rate);

    /** Log-normal with the given mu/sigma of the underlying normal. */
    double log_normal(double mu, double sigma);

    /** Normal distribution. */
    double normal(double mean, double stddev);

    /** Bernoulli trial. */
    bool flip(double probability);

    /**
     * Sample an index from unnormalized non-negative weights.
     * @pre at least one weight is positive.
     */
    std::size_t weighted_index(const std::vector<double> &weights);

    /**
     * Serialize the engine position for crash recovery. The encoding is
     * the standard-library textual form of mt19937_64, which round-trips
     * the exact generator state (bit-identical future draws).
     */
    std::string engine_state() const;

    /**
     * Restore a stream captured by engine_state()/draws()/forks().
     * @pre seed matches the seed this stream was constructed with, and
     *      state is a well-formed engine_state() string.
     */
    void restore(const std::string &state, std::uint64_t draws,
                 std::uint64_t forks);

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        ++draws_;
        std::shuffle(values.begin(), values.end(), engine_);
    }

  private:
    // ef-audit: transient(hash: position fully pinned by the (seed_, draws_, fork_count_) cursor; journaled verbatim (codec) to skip replaying draws)
    std::mt19937_64 engine_;
    // ef-audit: transient(decode: construction-time constant — restore() requires an Rng built with the matching seed)
    std::uint64_t seed_;
    std::uint64_t fork_count_ = 0;
    std::uint64_t draws_ = 0;
};

}  // namespace ef

#endif  // EF_COMMON_RNG_H_

#include "common/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>  // ef-lint: allow(file-io: plain CSV exchange files, not durable state)
#include <sstream>

#include "common/check.h"

namespace ef {
namespace {

std::vector<std::string>
split_line(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(field);
            field.clear();
        } else if (c != '\r') {
            field.push_back(c);
        }
    }
    fields.push_back(field);
    return fields;
}

std::string
quote_field(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

}  // namespace

int
CsvTable::column_index(const std::string &column) const
{
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == column)
            return static_cast<int>(i);
    }
    return -1;
}

const std::string &
CsvTable::cell(std::size_t row, const std::string &column) const
{
    EF_FATAL_IF(row >= rows.size(), "CSV row " << row << " out of range");
    int col = column_index(column);
    EF_FATAL_IF(col < 0, "CSV column '" << column << "' not found");
    EF_FATAL_IF(static_cast<std::size_t>(col) >= rows[row].size(),
                "CSV row " << row << " is missing column '" << column << "'");
    return rows[row][static_cast<std::size_t>(col)];
}

std::int64_t
csv_to_int(const std::string &field, const std::string &context)
{
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(field.c_str(), &end, 10);
    EF_FATAL_IF(field.empty() || end != field.c_str() + field.size() ||
                    errno == ERANGE,
                context << ": '" << field << "' is not an integer");
    return static_cast<std::int64_t>(value);
}

double
csv_to_double(const std::string &field, const std::string &context)
{
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    EF_FATAL_IF(field.empty() || end != field.c_str() + field.size() ||
                    errno == ERANGE,
                context << ": '" << field << "' is not a number");
    return value;
}

CsvTable
parse_csv(const std::string &text)
{
    CsvTable table;
    std::istringstream in(text);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty() || line == "\r")
            continue;
        auto fields = split_line(line);
        if (first) {
            table.header = std::move(fields);
            first = false;
        } else {
            table.rows.push_back(std::move(fields));
        }
    }
    return table;
}

CsvTable
load_csv(const std::string &path)
{
    // ef-lint: allow(file-io: plain CSV exchange files, not durable state)
    std::ifstream in(path);
    EF_FATAL_IF(!in, "cannot open CSV file: " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_csv(buffer.str());
}

std::string
to_csv(const std::vector<std::string> &header,
       const std::vector<std::vector<std::string>> &rows)
{
    std::ostringstream out;
    auto emit_row = [&out](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << quote_field(row[i]);
        }
        out << '\n';
    };
    emit_row(header);
    for (const auto &row : rows)
        emit_row(row);
    return out.str();
}

void
save_csv(const std::string &path, const std::vector<std::string> &header,
         const std::vector<std::vector<std::string>> &rows)
{
    // ef-lint: allow(file-io: plain CSV exchange files, not durable state)
    std::ofstream out(path);
    EF_FATAL_IF(!out, "cannot write CSV file: " << path);
    out << to_csv(header, rows);
}

}  // namespace ef

/**
 * @file
 * Summary statistics used by the metrics module and the benches:
 * online accumulation plus percentile queries over retained samples.
 */
#ifndef EF_COMMON_STATS_H_
#define EF_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace ef {

/** Collects scalar samples and answers summary queries. */
class SampleStats
{
  public:
    void add(double value);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /** Percentile in [0, 100] via linear interpolation between ranks. */
    double percentile(double pct) const;
    double median() const { return percentile(50.0); }

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
};

/**
 * Piecewise-constant time series (value holds from one sample time to
 * the next). Used for GPU-allocation and cluster-efficiency timelines
 * (Figs. 7 and 10), supporting time-weighted averages over a window.
 */
class StepSeries
{
  public:
    /** Record that the series takes @p value from @p time onward. */
    void record(double time, double value);

    bool empty() const { return times_.empty(); }
    std::size_t size() const { return times_.size(); }

    const std::vector<double> &times() const { return times_; }
    const std::vector<double> &values() const { return values_; }

    /** Value in effect at @p time (0 before the first sample). */
    double value_at(double time) const;

    /** Time-weighted mean over [t0, t1]. */
    double time_average(double t0, double t1) const;

    /**
     * Resample onto a uniform grid of @p buckets points across
     * [t0, t1] (bucket value = time-weighted mean), for compact
     * console plots in the benches.
     */
    std::vector<double> resample(double t0, double t1,
                                 std::size_t buckets) const;

  private:
    std::vector<double> times_;   // strictly increasing
    std::vector<double> values_;  // value from times_[i] to times_[i+1]
};

}  // namespace ef

#endif  // EF_COMMON_STATS_H_

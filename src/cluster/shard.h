/**
 * @file
 * Planner shard extraction along buddy-hierarchy boundaries.
 *
 * The buddy allocator (cluster/buddy.h) keeps power-of-two jobs packed
 * inside servers and racks, so rack boundaries are natural cut points
 * for parallel planning: a shard that owns whole racks can speculate
 * about placements without ever splitting a buddy block across shards.
 * `extract_pod_shards` groups a topology's racks into up to
 * `max_shards` contiguous *pods* of near-equal GPU capacity; shard
 * membership and order are pure functions of the topology and the
 * requested shard count (never of runtime state), which is what the
 * deterministic shard-parallel planner (DESIGN.md §10) requires.
 *
 * The capacity slices returned here are *speculation budgets*, not
 * hard partitions: the cross-shard balancer pass may still place a job
 * across pod boundaries when no single pod can hold it.
 */
#ifndef EF_CLUSTER_SHARD_H_
#define EF_CLUSTER_SHARD_H_

#include <vector>

#include "cluster/topology.h"
#include "common/types.h"

namespace ef {

/** One planner shard: a contiguous group of whole racks ("pod"). */
struct PodShard
{
    int index = 0;       ///< shard id; also its merge position
    int first_rack = 0;  ///< first rack owned (inclusive)
    int num_racks = 0;   ///< whole racks owned
    GpuCount gpus = 0;   ///< total GPU capacity of the pod
};

/**
 * Cut @p topo into at most @p max_shards pods of whole racks,
 * balanced to within one rack. Fewer shards come back when the
 * topology has fewer racks than requested; always at least one.
 */
std::vector<PodShard> extract_pod_shards(const Topology &topo,
                                         int max_shards);

/**
 * Convenience for callers that only know a GPU total (schedulers see
 * the cluster through ClusterView): shards the canonical
 * `TopologySpec::with_total_gpus` shape. The trailing shard absorbs
 * any capacity the synthetic topology rounds up, so shard capacities
 * always sum to exactly @p total_gpus.
 */
std::vector<PodShard> extract_pod_shards(GpuCount total_gpus,
                                         int max_shards);

/** Just the per-shard capacities, in shard order (planner input). */
std::vector<GpuCount> shard_capacities(const std::vector<PodShard> &shards);

}  // namespace ef

#endif  // EF_CLUSTER_SHARD_H_

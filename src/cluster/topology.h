/**
 * @file
 * GPU cluster topology model (paper §4.3, Fig. 5).
 *
 * ElasticFlow organizes GPUs in a multi-layer hierarchy: GPUs within a
 * server share NVLink/PCIe, servers within a rack share the ToR switch,
 * racks share the cluster spine. The only property the scheduler and
 * the performance model need from a placement is the *bottleneck
 * communication level* of the worker set, which this module derives
 * from GPU ids.
 *
 * GPU ids are dense: rack-major then server-major, i.e. GPU g lives in
 * server g / gpus_per_server and rack g / (gpus_per_server *
 * servers_per_rack).
 */
#ifndef EF_CLUSTER_TOPOLOGY_H_
#define EF_CLUSTER_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace ef {

/** Communication locality class of a worker set (best to worst). */
enum class CommLevel {
    kSingleGpu = 0,   ///< one worker, no communication
    kIntraServer = 1, ///< all workers share one server (NVLink/PCIe)
    kIntraRack = 2,   ///< spans servers inside one rack (ToR network)
    kCrossRack = 3,   ///< spans racks (spine network)
};

/** Human-readable name for a CommLevel (bench output). */
std::string comm_level_name(CommLevel level);

/** Static description of a cluster (sizes and link bandwidths). */
struct TopologySpec
{
    int num_racks = 2;
    int servers_per_rack = 8;
    int gpus_per_server = 8;

    /**
     * Effective bandwidths in GB/s available to one job's collective.
     * Communication is modelled hierarchically (like NCCL): an
     * intra-server reduce over NVLink/PCIe plus an inter-server
     * all-reduce whose bandwidth scales with the number of NICs a job
     * can drive per server (the testbed has one HDR HCA per GPU).
     * Defaults are calibrated against the paper's A100 measurements:
     * VGG16 reaches ~76% scaling efficiency at 8 intra-server GPUs
     * (Fig. 2a) and ResNet50's same-server vs. 8-server throughput
     * ratio lands near the paper's 2.17x (Fig. 2b).
     */
    double intra_server_gbps = 45.0;
    double per_nic_gbps = 2.5;
    int nics_per_server = 8;
    /** Cross-rack traffic keeps only this fraction of NIC bandwidth. */
    double cross_rack_factor = 0.6;

    /** Per-ring-step latency (seconds) added per communication hop. */
    double per_step_latency_s = 30e-6;

    /** Convenience: paper's testbed (16 servers x 8 A100 = 128 GPUs). */
    static TopologySpec testbed_128();
    /**
     * A commodity 40 Gbps-Ethernet cluster (§3.2 names this tier):
     * same shape as the testbed, ~1/4 the inter-server bandwidth and
     * PCIe-only intra-server links. Placement quality matters much
     * more here — used by the network-sensitivity ablation.
     */
    static TopologySpec ethernet_128();
    /** Small testbed used in Fig. 6(a): 4 servers x 8 = 32 GPUs. */
    static TopologySpec testbed_32();
    /** Arbitrary size: ceil(gpus/8) servers, 8 racks max balance. */
    static TopologySpec with_total_gpus(int total_gpus);
};

/** Immutable topology with id arithmetic and span classification. */
class Topology
{
  public:
    explicit Topology(TopologySpec spec);

    const TopologySpec &spec() const { return spec_; }

    GpuCount total_gpus() const { return total_gpus_; }
    int num_servers() const { return num_servers_; }
    int num_racks() const { return spec_.num_racks; }
    int gpus_per_server() const { return spec_.gpus_per_server; }

    /** Server index of a GPU id. */
    int server_of(GpuCount gpu) const;
    /** Rack index of a GPU id. */
    int rack_of(GpuCount gpu) const;
    /** Rack index of a server. */
    int rack_of_server(int server) const;
    /** First GPU id of a server. */
    GpuCount first_gpu_of_server(int server) const;

    /** Number of distinct servers a GPU set touches. */
    int server_span(const std::vector<GpuCount> &gpus) const;
    /** Number of distinct racks a GPU set touches. */
    int rack_span(const std::vector<GpuCount> &gpus) const;

    /** Communication level of a worker set (worst link in use). */
    CommLevel comm_level(const std::vector<GpuCount> &gpus) const;

    /**
     * Communication level of the most compact possible placement for
     * @p workers GPUs on this topology (what buddy allocation
     * guarantees): intra-server when the job fits in one server,
     * intra-rack when it fits in one rack, else cross-rack.
     */
    CommLevel compact_comm_level(GpuCount workers) const;

    /**
     * Effective all-reduce bandwidth (GB/s) at a level, for a job that
     * drives @p gpus_per_server_used GPUs (and hence NICs) in each
     * server it occupies.
     */
    double bandwidth_gbps(CommLevel level,
                          double gpus_per_server_used = 8.0) const;

  private:
    TopologySpec spec_;
    int num_servers_;
    GpuCount total_gpus_;
};

}  // namespace ef

#endif  // EF_CLUSTER_TOPOLOGY_H_

/**
 * @file
 * Cluster fragmentation metrics (paper §3.2 motivation).
 *
 * ElasticFlow's buddy allocation is greedy first-fit; under churn the
 * idle capacity splinters across servers until new jobs can only be
 * placed cross-server, which the paper measures at up to ≈2.17×
 * throughput loss for ResNet50. Two complementary views quantify
 * that damage:
 *
 *  - Buddy external fragmentation: the fraction of idle GPUs that are
 *    NOT part of a per-server power-of-two buddy block. A server with
 *    5 idle GPUs contributes a usable block of 4; the stranded
 *    remainder cannot serve a power-of-two request without spanning
 *    servers. 0 = every idle GPU sits in a maximal buddy block,
 *    1 = all idle capacity is stranded. Defined as 0 when the cluster
 *    has no idle GPUs.
 *
 *  - Cross-server span excess: for each placed job, the number of
 *    servers it touches beyond the minimum (ceil(size /
 *    gpus_per_server)) that a fully compacted placement would need.
 *    Summed over jobs this counts how many avoidable NIC-bound
 *    boundaries the current layout pays for.
 *
 * Both are pure functions of the placement — cheap enough to sample at
 * every planning round and report as obs gauges, independent of
 * whether the defrag optimizer is enabled.
 */
#ifndef EF_CLUSTER_FRAGMENTATION_H_
#define EF_CLUSTER_FRAGMENTATION_H_

#include "cluster/placement.h"
#include "common/types.h"

namespace ef {

/** Snapshot of the cluster's fragmentation state. */
struct FragmentationStats
{
    /** Idle GPUs in up servers. */
    GpuCount idle_gpus = 0;
    /** Idle GPUs usable as per-server power-of-two buddy blocks. */
    GpuCount buddy_usable_gpus = 0;
    /** 1 - buddy_usable/idle; 0 when the cluster is full. */
    double buddy_external_frag = 0.0;
    /** Largest per-server buddy block currently available. */
    GpuCount largest_buddy_block = 0;
    /** Number of placed jobs. */
    int placed_jobs = 0;
    /** Sum over jobs of (server_span - minimal compact span). */
    int total_span_excess = 0;
    /** Jobs whose span exceeds their compact span. */
    int jobs_with_span_excess = 0;
};

/** Largest power of two <= @p n (0 for n <= 0). */
GpuCount buddy_block_floor(GpuCount n);

/** Minimal server span of a @p size -GPU job on this topology. */
int compact_server_span(const Topology &topology, GpuCount size);

/** Cross-server span excess of one placed job. */
int span_excess_of(const PlacementManager &placement, JobId job);

/** Compute the full fragmentation snapshot for @p placement. */
FragmentationStats fragmentation_stats(const PlacementManager &placement);

}  // namespace ef

#endif  // EF_CLUSTER_FRAGMENTATION_H_

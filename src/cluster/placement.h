/**
 * @file
 * Topology-aware job placement with buddy-style defragmentation
 * (paper §4.3).
 *
 * The placement manager owns the assignment of jobs to concrete GPU
 * ids. ElasticFlow places jobs with Best-Fit over the topology tree
 * (the subtree whose idle GPU count is closest to the request) and,
 * when power-of-two worker counts are used, falls back to a
 * migration-based repacking that is guaranteed to succeed whenever
 * enough idle GPUs exist anywhere in the cluster. Baseline schedulers
 * use the non-migrating strategies, which can fragment — exactly the
 * effect the paper's §3.2 motivates.
 */
#ifndef EF_CLUSTER_PLACEMENT_H_
#define EF_CLUSTER_PLACEMENT_H_

#include <optional>
#include <map>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"

namespace ef {

/** How GPU ids are chosen for a job. */
enum class PlacementStrategy {
    kBestFitCompact,  ///< ElasticFlow: best-fit subtree, buddy repack
    kFirstFit,        ///< naive: lowest free GPU ids, may fragment
    kScatter,         ///< adversarial: round-robin across servers
};

/** A job relocation produced by defragmentation. */
struct Migration
{
    JobId job = kInvalidJob;
    std::vector<GpuCount> from;
    std::vector<GpuCount> to;
};

/** Outcome of a placement request. */
struct PlacementResult
{
    bool ok = false;
    std::vector<GpuCount> gpus;        ///< sorted GPU ids for the job
    std::vector<Migration> migrations; ///< relocations applied first
};

/** Tracks which job owns which GPU and serves placement requests. */
class PlacementManager
{
  public:
    explicit PlacementManager(const Topology *topology);

    const Topology &topology() const { return *topology_; }

    GpuCount total_gpus() const;
    /** GPUs in servers that are currently up. */
    GpuCount available_gpus() const;
    /** Idle GPUs in servers that are currently up. */
    GpuCount idle_gpus() const;
    GpuCount used_gpus() const;

    bool is_placed(JobId job) const;
    /** Sorted GPU ids of a placed job. */
    const std::vector<GpuCount> &gpus_of(JobId job) const;
    GpuCount size_of(JobId job) const;
    int server_span(JobId job) const;
    CommLevel comm_level_of(JobId job) const;
    std::vector<JobId> placed_jobs() const;

    /** Idle GPUs in one server (0 while the server is down). */
    GpuCount free_in_server(int server) const;

    /**
     * Mark a server failed/repaired (§4.4 "Node failures"). A server
     * must be empty before it can be taken down — the simulator
     * releases its jobs first. Down servers hold no placements and
     * do not count toward idle or available capacity.
     */
    void set_server_available(int server, bool available);
    bool server_available(int server) const;

    /**
     * Mark one GPU failed/repaired (ECC-style single-GPU fault): finer
     * grained than a server failure, so only placements using that GPU
     * are affected. The GPU must be unowned before it can be taken
     * down — the caller evicts its owner first. Down GPUs never serve
     * placements and do not count toward idle or available capacity.
     */
    void set_gpu_available(GpuCount gpu, bool available);
    bool gpu_available(GpuCount gpu) const;

    /** Owning job of one GPU (kInvalidJob when free or down). */
    JobId owner_of(GpuCount gpu) const;

    /**
     * Place @p job on @p size GPUs. The job must not currently be
     * placed. With kBestFitCompact and @p allow_migration, power-of-two
     * requests succeed whenever idle_gpus() >= size; the result then
     * lists the migrations (whole-job relocations) performed to
     * defragment. Other strategies never migrate.
     */
    PlacementResult place(JobId job, GpuCount size,
                          PlacementStrategy strategy,
                          bool allow_migration);

    /**
     * Change a placed job to @p new_size GPUs (elastic scaling). Keeps
     * as many of the job's current GPUs as the strategy allows. The
     * simulator charges the scaling overhead; this only rewires
     * ownership.
     */
    PlacementResult resize(JobId job, GpuCount new_size,
                           PlacementStrategy strategy,
                           bool allow_migration);

    /**
     * Atomically relocate a batch of placed jobs (background
     * defragmentation commit path). Every move's `from` must match the
     * job's current GPUs and every `to` must keep the job's size; the
     * union of targets may only reuse GPUs freed by the batch itself.
     * All moved jobs are released first, then reassigned, so circular
     * exchanges (swaps) commit in one step. Validates on completion.
     */
    void apply_moves(const std::vector<Migration> &moves);

    /** Free all GPUs of a placed job. */
    void release(JobId job);

    /**
     * Crash recovery: rebuild the full placement on a fresh manager
     * from a snapshot's per-GPU owner and availability arrays. Must be
     * called before any other mutation; validates the result. Owners
     * are grouped into per-job sorted GPU lists, so the rebuilt state
     * is byte-identical to the one that was snapshotted.
     */
    void restore(const std::vector<JobId> &owner,
                 const std::vector<bool> &gpu_down,
                 const std::vector<bool> &server_down);

    /** Internal consistency check (tests call this after mutations). */
    void validate() const;

  private:
    std::vector<GpuCount> take_from_server(int server, GpuCount count);
    void assign(JobId job, std::vector<GpuCount> gpus);
    void unassign(JobId job);

    std::optional<std::vector<GpuCount>>
    try_direct(GpuCount size, PlacementStrategy strategy) const;

    /** Best-fit without migration; nullopt when impossible. */
    std::optional<std::vector<GpuCount>> try_best_fit(GpuCount size) const;
    std::optional<std::vector<GpuCount>> try_first_fit(GpuCount size) const;
    std::optional<std::vector<GpuCount>> try_scatter(GpuCount size) const;

    /** Full buddy repack; fills result on success. */
    bool repack_with(JobId new_job, GpuCount size, PlacementResult *result);

    const Topology *topology_;
    std::vector<JobId> gpu_owner_;              // size total_gpus
    std::map<JobId, std::vector<GpuCount>> job_gpus_;
    /** Unowned AND individually-up GPUs per server. */
    std::vector<GpuCount> free_per_server_;
    std::vector<bool> server_down_;
    std::vector<bool> gpu_down_;                // size total_gpus
    std::vector<GpuCount> down_per_server_;
    GpuCount down_gpus_ = 0;
};

}  // namespace ef

#endif  // EF_CLUSTER_PLACEMENT_H_

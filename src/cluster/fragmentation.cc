#include "cluster/fragmentation.h"

#include "common/check.h"

namespace ef {

GpuCount
buddy_block_floor(GpuCount n)
{
    if (n <= 0)
        return 0;
    GpuCount block = 1;
    while (block * 2 <= n)
        block *= 2;
    return block;
}

int
compact_server_span(const Topology &topology, GpuCount size)
{
    EF_CHECK_MSG(size > 0, "compact span of an empty job");
    const int per_server = topology.gpus_per_server();
    return static_cast<int>((size + per_server - 1) / per_server);
}

int
span_excess_of(const PlacementManager &placement, JobId job)
{
    const GpuCount size = placement.size_of(job);
    const int compact =
        compact_server_span(placement.topology(), size);
    const int span = placement.server_span(job);
    return span > compact ? span - compact : 0;
}

FragmentationStats
fragmentation_stats(const PlacementManager &placement)
{
    FragmentationStats stats;
    const Topology &topology = placement.topology();
    for (int s = 0; s < topology.num_servers(); ++s) {
        const GpuCount free = placement.free_in_server(s);
        const GpuCount block = buddy_block_floor(free);
        stats.idle_gpus += free;
        stats.buddy_usable_gpus += block;
        if (block > stats.largest_buddy_block)
            stats.largest_buddy_block = block;
    }
    if (stats.idle_gpus > 0) {
        stats.buddy_external_frag =
            1.0 - static_cast<double>(stats.buddy_usable_gpus) /
                      static_cast<double>(stats.idle_gpus);
    }
    for (JobId job : placement.placed_jobs()) {
        const int excess = span_excess_of(placement, job);
        ++stats.placed_jobs;
        stats.total_span_excess += excess;
        if (excess > 0)
            ++stats.jobs_with_span_excess;
    }
    return stats;
}

}  // namespace ef

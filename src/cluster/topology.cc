#include "cluster/topology.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace ef {

std::string
comm_level_name(CommLevel level)
{
    switch (level) {
      case CommLevel::kSingleGpu: return "single-gpu";
      case CommLevel::kIntraServer: return "intra-server";
      case CommLevel::kIntraRack: return "intra-rack";
      case CommLevel::kCrossRack: return "cross-rack";
    }
    return "?";
}

TopologySpec
TopologySpec::testbed_128()
{
    TopologySpec spec;
    spec.num_racks = 2;
    spec.servers_per_rack = 8;
    spec.gpus_per_server = 8;
    return spec;
}

TopologySpec
TopologySpec::ethernet_128()
{
    TopologySpec spec = testbed_128();
    spec.intra_server_gbps = 24.0;  // PCIe-only peer access
    spec.per_nic_gbps = 0.6;        // ~40 Gbps Ethernet, one NIC/GPU
    spec.cross_rack_factor = 0.5;
    return spec;
}

TopologySpec
TopologySpec::testbed_32()
{
    TopologySpec spec;
    spec.num_racks = 1;
    spec.servers_per_rack = 4;
    spec.gpus_per_server = 8;
    return spec;
}

TopologySpec
TopologySpec::with_total_gpus(int total_gpus)
{
    EF_FATAL_IF(total_gpus < 1, "cluster needs at least one GPU");
    TopologySpec spec;
    spec.gpus_per_server = std::min(8, total_gpus);
    int servers = (total_gpus + spec.gpus_per_server - 1) /
                  spec.gpus_per_server;
    // Up to 8 servers per rack, balanced racks.
    spec.num_racks = (servers + 7) / 8;
    spec.servers_per_rack = (servers + spec.num_racks - 1) / spec.num_racks;
    return spec;
}

Topology::Topology(TopologySpec spec) : spec_(spec)
{
    EF_FATAL_IF(spec_.num_racks < 1 || spec_.servers_per_rack < 1 ||
                    spec_.gpus_per_server < 1,
                "invalid topology spec");
    num_servers_ = spec_.num_racks * spec_.servers_per_rack;
    total_gpus_ = num_servers_ * spec_.gpus_per_server;
}

int
Topology::server_of(GpuCount gpu) const
{
    EF_CHECK(gpu >= 0 && gpu < total_gpus_);
    return gpu / spec_.gpus_per_server;
}

int
Topology::rack_of(GpuCount gpu) const
{
    return rack_of_server(server_of(gpu));
}

int
Topology::rack_of_server(int server) const
{
    EF_CHECK(server >= 0 && server < num_servers_);
    return server / spec_.servers_per_rack;
}

GpuCount
Topology::first_gpu_of_server(int server) const
{
    EF_CHECK(server >= 0 && server < num_servers_);
    return server * spec_.gpus_per_server;
}

int
Topology::server_span(const std::vector<GpuCount> &gpus) const
{
    std::set<int> servers;
    for (GpuCount g : gpus)
        servers.insert(server_of(g));
    return static_cast<int>(servers.size());
}

int
Topology::rack_span(const std::vector<GpuCount> &gpus) const
{
    std::set<int> racks;
    for (GpuCount g : gpus)
        racks.insert(rack_of(g));
    return static_cast<int>(racks.size());
}

CommLevel
Topology::comm_level(const std::vector<GpuCount> &gpus) const
{
    if (gpus.size() <= 1)
        return CommLevel::kSingleGpu;
    if (server_span(gpus) == 1)
        return CommLevel::kIntraServer;
    if (rack_span(gpus) == 1)
        return CommLevel::kIntraRack;
    return CommLevel::kCrossRack;
}

CommLevel
Topology::compact_comm_level(GpuCount workers) const
{
    EF_CHECK(workers >= 0);
    if (workers <= 1)
        return CommLevel::kSingleGpu;
    if (workers <= spec_.gpus_per_server)
        return CommLevel::kIntraServer;
    if (workers <= spec_.gpus_per_server * spec_.servers_per_rack)
        return CommLevel::kIntraRack;
    return CommLevel::kCrossRack;
}

double
Topology::bandwidth_gbps(CommLevel level, double gpus_per_server_used) const
{
    double nic_bw = spec_.per_nic_gbps *
                    std::min(gpus_per_server_used,
                             static_cast<double>(spec_.nics_per_server));
    switch (level) {
      case CommLevel::kSingleGpu:
        return spec_.intra_server_gbps;  // unused: no communication
      case CommLevel::kIntraServer:
        return spec_.intra_server_gbps;
      case CommLevel::kIntraRack:
        return nic_bw;
      case CommLevel::kCrossRack:
        return nic_bw * spec_.cross_rack_factor;
    }
    EF_CHECK(false);
    return 0.0;
}

}  // namespace ef

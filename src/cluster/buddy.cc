#include "cluster/buddy.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/math_util.h"

namespace ef {

Packing
pack_power_of_two(const std::vector<PackItem> &items, int num_bins,
                  GpuCount bin_capacity)
{
    EF_CHECK(num_bins >= 0);
    EF_CHECK_MSG(is_power_of_two(bin_capacity),
                 "bin capacity must be a power of two: " << bin_capacity);

    Packing packing;
    packing.bin_of_item.assign(items.size(), -1);
    packing.bin_used.assign(static_cast<std::size_t>(num_bins), 0);

    std::vector<std::size_t> order(items.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // First-fit decreasing; ties broken by id for determinism.
    std::stable_sort(order.begin(), order.end(),
                     [&items](std::size_t a, std::size_t b) {
                         if (items[a].size != items[b].size)
                             return items[a].size > items[b].size;
                         return items[a].id < items[b].id;
                     });

    for (std::size_t idx : order) {
        const PackItem &item = items[idx];
        EF_CHECK_MSG(is_power_of_two(item.size) && item.size <= bin_capacity,
                     "pack item size must be a power of two <= capacity, got "
                         << item.size);
        bool placed = false;
        for (int b = 0; b < num_bins; ++b) {
            if (packing.bin_used[b] + item.size <= bin_capacity) {
                packing.bin_used[b] += item.size;
                packing.bin_of_item[idx] = b;
                placed = true;
                break;
            }
        }
        if (!placed) {
            packing.feasible = false;
            return packing;
        }
    }
    packing.feasible = true;
    return packing;
}

bool
fits_after_repack(const std::vector<PackItem> &existing, GpuCount size,
                  int num_bins, GpuCount bin_capacity)
{
    EF_CHECK(is_power_of_two(size));
    std::vector<PackItem> items = existing;
    if (size <= bin_capacity) {
        items.push_back(PackItem{-1, size});
    } else {
        EF_CHECK_MSG(size % bin_capacity == 0,
                     "multi-bin item must be a multiple of bin capacity");
        for (GpuCount s = 0; s < size / bin_capacity; ++s)
            items.push_back(PackItem{-1, bin_capacity});
    }
    return pack_power_of_two(items, num_bins, bin_capacity).feasible;
}

}  // namespace ef

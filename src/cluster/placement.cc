#include "cluster/placement.h"

#include <algorithm>
#include <numeric>

#include "cluster/buddy.h"
#include "common/check.h"
#include "common/math_util.h"
#include "obs/metrics.h"

namespace ef {

PlacementManager::PlacementManager(const Topology *topology)
    : topology_(topology)
{
    EF_CHECK(topology_ != nullptr);
    gpu_owner_.assign(static_cast<std::size_t>(topology_->total_gpus()),
                      kInvalidJob);
    free_per_server_.assign(static_cast<std::size_t>(
                                topology_->num_servers()),
                            topology_->gpus_per_server());
    server_down_.assign(static_cast<std::size_t>(
                            topology_->num_servers()),
                        false);
    gpu_down_.assign(static_cast<std::size_t>(topology_->total_gpus()),
                     false);
    down_per_server_.assign(static_cast<std::size_t>(
                                topology_->num_servers()),
                            0);
}

GpuCount
PlacementManager::total_gpus() const
{
    return topology_->total_gpus();
}

GpuCount
PlacementManager::available_gpus() const
{
    GpuCount total = 0;
    for (int s = 0; s < topology_->num_servers(); ++s) {
        if (!server_down_[static_cast<std::size_t>(s)]) {
            total += topology_->gpus_per_server() -
                     down_per_server_[static_cast<std::size_t>(s)];
        }
    }
    return total;
}

GpuCount
PlacementManager::idle_gpus() const
{
    GpuCount total = 0;
    for (int s = 0; s < topology_->num_servers(); ++s) {
        if (!server_down_[static_cast<std::size_t>(s)])
            total += free_per_server_[static_cast<std::size_t>(s)];
    }
    return total;
}

GpuCount
PlacementManager::used_gpus() const
{
    return available_gpus() - idle_gpus();
}

bool
PlacementManager::is_placed(JobId job) const
{
    return job_gpus_.count(job) > 0;
}

const std::vector<GpuCount> &
PlacementManager::gpus_of(JobId job) const
{
    auto it = job_gpus_.find(job);
    EF_CHECK_MSG(it != job_gpus_.end(), "job " << job << " is not placed");
    return it->second;
}

GpuCount
PlacementManager::size_of(JobId job) const
{
    return static_cast<GpuCount>(gpus_of(job).size());
}

int
PlacementManager::server_span(JobId job) const
{
    return topology_->server_span(gpus_of(job));
}

CommLevel
PlacementManager::comm_level_of(JobId job) const
{
    return topology_->comm_level(gpus_of(job));
}

std::vector<JobId>
PlacementManager::placed_jobs() const
{
    std::vector<JobId> jobs;
    jobs.reserve(job_gpus_.size());
    for (const auto &[job, gpus] : job_gpus_)
        jobs.push_back(job);
    return jobs;
}

GpuCount
PlacementManager::free_in_server(int server) const
{
    EF_CHECK(server >= 0 && server < topology_->num_servers());
    if (server_down_[static_cast<std::size_t>(server)])
        return 0;
    return free_per_server_[static_cast<std::size_t>(server)];
}

void
PlacementManager::set_server_available(int server, bool available)
{
    EF_CHECK(server >= 0 && server < topology_->num_servers());
    if (!available) {
        // Every GPU must be unowned (free or individually down).
        EF_CHECK_MSG(free_per_server_[static_cast<std::size_t>(server)] +
                             down_per_server_[static_cast<std::size_t>(
                                 server)] ==
                         topology_->gpus_per_server(),
                     "server " << server
                               << " must be drained before going down");
    }
    server_down_[static_cast<std::size_t>(server)] = !available;
}

bool
PlacementManager::server_available(int server) const
{
    EF_CHECK(server >= 0 && server < topology_->num_servers());
    return !server_down_[static_cast<std::size_t>(server)];
}

void
PlacementManager::set_gpu_available(GpuCount gpu, bool available)
{
    EF_CHECK(gpu >= 0 && gpu < topology_->total_gpus());
    std::size_t g = static_cast<std::size_t>(gpu);
    std::size_t s = static_cast<std::size_t>(topology_->server_of(gpu));
    if (!available) {
        EF_CHECK_MSG(gpu_owner_[g] == kInvalidJob,
                     "GPU " << gpu
                            << " must be released before going down");
        EF_CHECK_MSG(!gpu_down_[g], "GPU " << gpu << " is already down");
        gpu_down_[g] = true;
        --free_per_server_[s];
        ++down_per_server_[s];
        ++down_gpus_;
    } else {
        EF_CHECK_MSG(gpu_down_[g], "GPU " << gpu << " is not down");
        gpu_down_[g] = false;
        ++free_per_server_[s];
        --down_per_server_[s];
        --down_gpus_;
    }
}

bool
PlacementManager::gpu_available(GpuCount gpu) const
{
    EF_CHECK(gpu >= 0 && gpu < topology_->total_gpus());
    return !gpu_down_[static_cast<std::size_t>(gpu)];
}

JobId
PlacementManager::owner_of(GpuCount gpu) const
{
    EF_CHECK(gpu >= 0 && gpu < topology_->total_gpus());
    return gpu_owner_[static_cast<std::size_t>(gpu)];
}

std::vector<GpuCount>
PlacementManager::take_from_server(int server, GpuCount count)
{
    std::vector<GpuCount> taken;
    GpuCount base = topology_->first_gpu_of_server(server);
    for (GpuCount g = base;
         g < base + topology_->gpus_per_server() &&
         static_cast<GpuCount>(taken.size()) < count;
         ++g) {
        if (gpu_owner_[static_cast<std::size_t>(g)] == kInvalidJob &&
            !gpu_down_[static_cast<std::size_t>(g)]) {
            taken.push_back(g);
        }
    }
    EF_CHECK_MSG(static_cast<GpuCount>(taken.size()) == count,
                 "server " << server << " lacks " << count << " free GPUs");
    return taken;
}

void
PlacementManager::assign(JobId job, std::vector<GpuCount> gpus)
{
    EF_CHECK(!is_placed(job));
    std::sort(gpus.begin(), gpus.end());
    for (GpuCount g : gpus) {
        EF_CHECK_MSG(gpu_owner_[static_cast<std::size_t>(g)] == kInvalidJob,
                     "GPU " << g << " is already owned");
        EF_CHECK_MSG(!gpu_down_[static_cast<std::size_t>(g)],
                     "GPU " << g << " is down");
        gpu_owner_[static_cast<std::size_t>(g)] = job;
        --free_per_server_[static_cast<std::size_t>(topology_->server_of(g))];
    }
    job_gpus_[job] = std::move(gpus);
}

void
PlacementManager::unassign(JobId job)
{
    auto it = job_gpus_.find(job);
    EF_CHECK(it != job_gpus_.end());
    for (GpuCount g : it->second) {
        gpu_owner_[static_cast<std::size_t>(g)] = kInvalidJob;
        ++free_per_server_[static_cast<std::size_t>(topology_->server_of(g))];
    }
    job_gpus_.erase(it);
}

void
PlacementManager::restore(const std::vector<JobId> &owner,
                          const std::vector<bool> &gpu_down,
                          const std::vector<bool> &server_down)
{
    std::size_t total = static_cast<std::size_t>(topology_->total_gpus());
    EF_CHECK(owner.size() == total && gpu_down.size() == total);
    EF_CHECK(server_down.size() ==
             static_cast<std::size_t>(topology_->num_servers()));
    EF_CHECK_MSG(job_gpus_.empty() && down_gpus_ == 0,
                 "restore() requires a fresh placement manager");
    // Availability first (a down GPU is necessarily unowned in a
    // consistent snapshot), then ownership grouped per job.
    for (std::size_t g = 0; g < total; ++g)
        if (gpu_down[g])
            set_gpu_available(static_cast<GpuCount>(g), false);
    for (std::size_t srv = 0; srv < server_down.size(); ++srv)
        if (server_down[srv])
            set_server_available(static_cast<int>(srv), false);
    std::map<JobId, std::vector<GpuCount>> per_job;
    for (std::size_t g = 0; g < total; ++g)
        if (owner[g] != kInvalidJob)
            per_job[owner[g]].push_back(static_cast<GpuCount>(g));
    for (auto &[job, gpus] : per_job)
        assign(job, std::move(gpus));
    validate();
}

std::optional<std::vector<GpuCount>>
PlacementManager::try_direct(GpuCount size, PlacementStrategy strategy) const
{
    switch (strategy) {
      case PlacementStrategy::kBestFitCompact:
        return try_best_fit(size);
      case PlacementStrategy::kFirstFit:
        return try_first_fit(size);
      case PlacementStrategy::kScatter:
        return try_scatter(size);
    }
    EF_CHECK(false);
    return std::nullopt;
}

std::optional<std::vector<GpuCount>>
PlacementManager::try_best_fit(GpuCount size) const
{
    const int servers = topology_->num_servers();
    const GpuCount per_server = topology_->gpus_per_server();

    if (size <= per_server) {
        // Best fit: the server whose idle count is closest to (but at
        // least) the request.
        int best = -1;
        for (int s = 0; s < servers; ++s) {
            if (server_down_[static_cast<std::size_t>(s)])
                continue;
            GpuCount free = free_per_server_[static_cast<std::size_t>(s)];
            if (free < size)
                continue;
            if (best < 0 ||
                free < free_per_server_[static_cast<std::size_t>(best)]) {
                best = s;
            }
        }
        if (best >= 0) {
            std::vector<GpuCount> gpus;
            GpuCount base = topology_->first_gpu_of_server(best);
            for (GpuCount g = base; g < base + per_server; ++g) {
                if (gpu_owner_[static_cast<std::size_t>(g)] ==
                        kInvalidJob &&
                    !gpu_down_[static_cast<std::size_t>(g)]) {
                    gpus.push_back(g);
                    if (static_cast<GpuCount>(gpus.size()) == size)
                        return gpus;
                }
            }
        }
        // No single server fits: fall through to the fragmented
        // fullest-first fallback below (the paper's §4.3 scenario —
        // callers that allow migration will repack instead).
    } else {
        // Multi-server job: prefer whole free servers, best-fit by rack
        // (the rack with the fewest spare free servers that still
        // fits).
        std::vector<int> free_servers;
        for (int s = 0; s < servers; ++s) {
            if (server_down_[static_cast<std::size_t>(s)])
                continue;
            if (free_per_server_[static_cast<std::size_t>(s)] == per_server)
                free_servers.push_back(s);
        }
        int needed_servers = (size + per_server - 1) / per_server;
        if (static_cast<int>(free_servers.size()) >= needed_servers) {
            std::vector<int> per_rack(static_cast<std::size_t>(
                                          topology_->num_racks()), 0);
            for (int s : free_servers)
                ++per_rack[static_cast<std::size_t>(
                    topology_->rack_of_server(s))];
            int best_rack = -1;
            for (int r = 0; r < topology_->num_racks(); ++r) {
                if (per_rack[static_cast<std::size_t>(r)] < needed_servers)
                    continue;
                if (best_rack < 0 ||
                    per_rack[static_cast<std::size_t>(r)] <
                        per_rack[static_cast<std::size_t>(best_rack)]) {
                    best_rack = r;
                }
            }
            std::vector<GpuCount> gpus;
            GpuCount remaining = size;
            auto take_server = [&](int s) {
                GpuCount base = topology_->first_gpu_of_server(s);
                GpuCount take = std::min(remaining, per_server);
                for (GpuCount g = base; g < base + take; ++g)
                    gpus.push_back(g);
                remaining -= take;
            };
            if (best_rack >= 0) {
                for (int s : free_servers) {
                    if (remaining == 0)
                        break;
                    if (topology_->rack_of_server(s) == best_rack)
                        take_server(s);
                }
            } else {
                for (int s : free_servers) {
                    if (remaining == 0)
                        break;
                    take_server(s);
                }
            }
            EF_CHECK(remaining == 0);
            return gpus;
        }
    }

    // Not enough whole free servers: greedily take the fullest-free
    // servers (fewest fragments) if the total suffices.
    if (idle_gpus() < size)
        return std::nullopt;
    std::vector<int> order(static_cast<std::size_t>(servers));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
        return free_per_server_[static_cast<std::size_t>(a)] >
               free_per_server_[static_cast<std::size_t>(b)];
    });
    std::vector<GpuCount> gpus;
    GpuCount remaining = size;
    for (int s : order) {
        if (remaining == 0)
            break;
        if (server_down_[static_cast<std::size_t>(s)])
            continue;
        GpuCount take = std::min(
            remaining, free_per_server_[static_cast<std::size_t>(s)]);
        if (take == 0)
            continue;
        GpuCount base = topology_->first_gpu_of_server(s);
        for (GpuCount g = base;
             g < base + per_server && take > 0; ++g) {
            if (gpu_owner_[static_cast<std::size_t>(g)] == kInvalidJob &&
                !gpu_down_[static_cast<std::size_t>(g)]) {
                gpus.push_back(g);
                --take;
                --remaining;
            }
        }
    }
    EF_CHECK(remaining == 0);
    return gpus;
}

std::optional<std::vector<GpuCount>>
PlacementManager::try_first_fit(GpuCount size) const
{
    if (idle_gpus() < size)
        return std::nullopt;
    std::vector<GpuCount> gpus;
    for (GpuCount g = 0; g < topology_->total_gpus(); ++g) {
        if (server_down_[static_cast<std::size_t>(
                topology_->server_of(g))]) {
            continue;
        }
        if (gpu_owner_[static_cast<std::size_t>(g)] == kInvalidJob &&
            !gpu_down_[static_cast<std::size_t>(g)]) {
            gpus.push_back(g);
            if (static_cast<GpuCount>(gpus.size()) == size)
                return gpus;
        }
    }
    return std::nullopt;
}

std::optional<std::vector<GpuCount>>
PlacementManager::try_scatter(GpuCount size) const
{
    if (idle_gpus() < size)
        return std::nullopt;
    std::vector<GpuCount> gpus;
    std::vector<GpuCount> cursor(static_cast<std::size_t>(
                                     topology_->num_servers()), 0);
    while (static_cast<GpuCount>(gpus.size()) < size) {
        bool progressed = false;
        for (int s = 0; s < topology_->num_servers() &&
                        static_cast<GpuCount>(gpus.size()) < size;
             ++s) {
            if (server_down_[static_cast<std::size_t>(s)])
                continue;
            GpuCount base = topology_->first_gpu_of_server(s);
            GpuCount &c = cursor[static_cast<std::size_t>(s)];
            while (c < topology_->gpus_per_server()) {
                GpuCount g = base + c;
                ++c;
                if (gpu_owner_[static_cast<std::size_t>(g)] ==
                        kInvalidJob &&
                    !gpu_down_[static_cast<std::size_t>(g)]) {
                    gpus.push_back(g);
                    progressed = true;
                    break;
                }
            }
        }
        if (!progressed)
            break;
    }
    if (static_cast<GpuCount>(gpus.size()) != size)
        return std::nullopt;
    return gpus;
}

bool
PlacementManager::repack_with(JobId new_job, GpuCount size,
                              PlacementResult *result)
{
    const GpuCount per_server = topology_->gpus_per_server();
    if (!is_power_of_two(size) || !is_power_of_two(per_server))
        return false;
    // Individually-down GPUs break the power-of-two bin invariant the
    // buddy packing relies on; direct placement still works around
    // them, so just decline to repack.
    if (down_gpus_ > 0)
        return false;
    if (idle_gpus() < size)
        return false;

    const int n = topology_->num_servers();
    const int num_racks = topology_->num_racks();
    const int servers_per_rack = topology_->spec().servers_per_rack;

    // Split jobs into multi-server ("big") jobs, which need whole
    // servers and should stay rack-local, and single-server ("small")
    // jobs; bail out on shapes buddy packing cannot express.
    struct BigJob { JobId job; int servers; };
    std::vector<BigJob> bigs;
    std::vector<PackItem> smalls;
    auto classify = [&](JobId job, GpuCount job_size) -> bool {
        if (job_size <= per_server) {
            if (!is_power_of_two(job_size))
                return false;
            smalls.push_back(PackItem{job, job_size});
            return true;
        }
        if (job_size % per_server != 0)
            return false;
        bigs.push_back(BigJob{job, job_size / per_server});
        return true;
    };
    for (const auto &[job, gpus] : job_gpus_) {
        if (!classify(job, static_cast<GpuCount>(gpus.size())))
            return false;
    }
    if (!classify(new_job, size))
        return false;

    // Level 1: assign big jobs to racks (best-fit decreasing on whole
    // servers), so their bandwidth matches the compact-placement curve
    // the planner used. A job larger than a rack, or one that cannot
    // fit any single rack, is split across the racks with the most
    // room (it will run at cross-rack bandwidth — the planner's
    // compact_comm_level already says so when the job exceeds a rack).
    std::vector<int> rack_free(static_cast<std::size_t>(num_racks),
                               servers_per_rack);
    for (int srv = 0; srv < n; ++srv) {
        if (server_down_[static_cast<std::size_t>(srv)])
            --rack_free[static_cast<std::size_t>(
                topology_->rack_of_server(srv))];
    }
    // bin_jobs[b]: GPUs of each job in abstract server bin b. Bins are
    // grouped per rack: rack r owns bins [r*spr, (r+1)*spr).
    std::vector<std::map<JobId, GpuCount>> bin_jobs(
        static_cast<std::size_t>(n));
    std::vector<GpuCount> bin_used(static_cast<std::size_t>(n), 0);
    // Reserve one sentinel bin per down server (nothing packs there;
    // the matching below pins it onto the down server itself).
    std::vector<int> down_bins;
    for (int srv = 0; srv < n; ++srv) {
        if (!server_down_[static_cast<std::size_t>(srv)])
            continue;
        int r = topology_->rack_of_server(srv);
        for (int b = r * servers_per_rack; b < (r + 1) * servers_per_rack;
             ++b) {
            if (bin_used[static_cast<std::size_t>(b)] == 0) {
                bin_used[static_cast<std::size_t>(b)] = per_server;
                down_bins.push_back(b);
                break;
            }
        }
    }
    auto bins_of_rack = [&](int r, int want) {
        // indices of `want` empty bins in rack r
        std::vector<int> out;
        for (int b = r * servers_per_rack;
             b < (r + 1) * servers_per_rack &&
             static_cast<int>(out.size()) < want;
             ++b) {
            if (bin_used[static_cast<std::size_t>(b)] == 0)
                out.push_back(b);
        }
        return out;
    };
    std::stable_sort(bigs.begin(), bigs.end(),
                     [](const BigJob &a, const BigJob &b) {
                         if (a.servers != b.servers)
                             return a.servers > b.servers;
                         return a.job < b.job;
                     });
    for (const BigJob &big : bigs) {
        int best_rack = -1;
        for (int r = 0; r < num_racks; ++r) {
            if (rack_free[static_cast<std::size_t>(r)] < big.servers)
                continue;
            if (best_rack < 0 ||
                rack_free[static_cast<std::size_t>(r)] <
                    rack_free[static_cast<std::size_t>(best_rack)]) {
                best_rack = r;
            }
        }
        int remaining = big.servers;
        if (best_rack >= 0) {
            for (int b : bins_of_rack(best_rack, big.servers)) {
                bin_jobs[static_cast<std::size_t>(b)][big.job] = per_server;
                bin_used[static_cast<std::size_t>(b)] = per_server;
                --remaining;
            }
            rack_free[static_cast<std::size_t>(best_rack)] -= big.servers;
        } else {
            // Cross-rack split: drain the racks with the most room.
            while (remaining > 0) {
                int r_most = -1;
                for (int r = 0; r < num_racks; ++r) {
                    if (rack_free[static_cast<std::size_t>(r)] == 0)
                        continue;
                    if (r_most < 0 ||
                        rack_free[static_cast<std::size_t>(r)] >
                            rack_free[static_cast<std::size_t>(r_most)]) {
                        r_most = r;
                    }
                }
                if (r_most < 0)
                    return false;  // not enough whole servers anywhere
                int take = std::min(
                    remaining, rack_free[static_cast<std::size_t>(r_most)]);
                for (int b : bins_of_rack(r_most, take)) {
                    bin_jobs[static_cast<std::size_t>(b)][big.job] =
                        per_server;
                    bin_used[static_cast<std::size_t>(b)] = per_server;
                    --remaining;
                }
                rack_free[static_cast<std::size_t>(r_most)] -= take;
            }
        }
    }

    // Level 2: first-fit-decreasing of small jobs into the remaining
    // bins (partially filled first — best fit — then empty bins in the
    // rack with the least room, to keep whole servers free for future
    // big jobs). Power-of-two sizes make this packing gap-free.
    std::stable_sort(smalls.begin(), smalls.end(),
                     [](const PackItem &a, const PackItem &b) {
                         if (a.size != b.size)
                             return a.size > b.size;
                         return a.id < b.id;
                     });
    for (const PackItem &item : smalls) {
        int best_bin = -1;
        for (int b = 0; b < n; ++b) {
            GpuCount used = bin_used[static_cast<std::size_t>(b)];
            if (used == 0 || used + item.size > per_server)
                continue;
            if (best_bin < 0 ||
                used > bin_used[static_cast<std::size_t>(best_bin)]) {
                best_bin = b;
            }
        }
        if (best_bin < 0) {
            // Open an empty bin in the fullest rack that still has one.
            int best_rack = -1;
            for (int r = 0; r < num_racks; ++r) {
                if (rack_free[static_cast<std::size_t>(r)] == 0)
                    continue;
                if (best_rack < 0 ||
                    rack_free[static_cast<std::size_t>(r)] <
                        rack_free[static_cast<std::size_t>(best_rack)]) {
                    best_rack = r;
                }
            }
            if (best_rack < 0)
                return false;
            best_bin = bins_of_rack(best_rack, 1).front();
            rack_free[static_cast<std::size_t>(best_rack)] -= 1;
        }
        bin_jobs[static_cast<std::size_t>(best_bin)][item.id] += item.size;
        bin_used[static_cast<std::size_t>(best_bin)] += item.size;
    }
    // current_in[job][server] = GPUs job currently holds in server.
    std::map<JobId, std::vector<GpuCount>> current_in;
    for (const auto &[job, gpus] : job_gpus_) {
        auto &row = current_in[job];
        row.assign(static_cast<std::size_t>(n), 0);
        for (GpuCount g : gpus)
            ++row[static_cast<std::size_t>(topology_->server_of(g))];
    }

    // Match abstract bins to physical servers *within each rack*,
    // maximizing overlap with the current layout so as few jobs as
    // possible actually move.
    std::vector<int> bin_to_server(static_cast<std::size_t>(n), -1);
    std::vector<bool> server_taken(static_cast<std::size_t>(n), false);
    std::vector<bool> bin_done(static_cast<std::size_t>(n), false);
    auto rack_of_bin = [&](int b) { return b / servers_per_rack; };
    // Pin the sentinel bins to the down servers before matching.
    {
        std::size_t next_down_bin = 0;
        for (int srv = 0; srv < n && next_down_bin < down_bins.size();
             ++srv) {
            if (!server_down_[static_cast<std::size_t>(srv)])
                continue;
            // Find the sentinel bin reserved in this server's rack.
            for (std::size_t i = next_down_bin; i < down_bins.size();
                 ++i) {
                int b = down_bins[i];
                if (rack_of_bin(b) == topology_->rack_of_server(srv) &&
                    !bin_done[static_cast<std::size_t>(b)]) {
                    bin_to_server[static_cast<std::size_t>(b)] = srv;
                    bin_done[static_cast<std::size_t>(b)] = true;
                    server_taken[static_cast<std::size_t>(srv)] = true;
                    break;
                }
            }
            ++next_down_bin;
        }
    }
    for (int round = 0; round < n; ++round) {
        int best_bin = -1, best_server = -1;
        GpuCount best_overlap = -1;
        for (int b = 0; b < n; ++b) {
            if (bin_done[static_cast<std::size_t>(b)])
                continue;
            int r = rack_of_bin(b);
            for (int s = r * servers_per_rack;
                 s < (r + 1) * servers_per_rack; ++s) {
                if (server_taken[static_cast<std::size_t>(s)])
                    continue;
                GpuCount overlap = 0;
                for (const auto &[job, cnt] :
                     bin_jobs[static_cast<std::size_t>(b)]) {
                    auto it = current_in.find(job);
                    if (it != current_in.end()) {
                        overlap += std::min(
                            cnt, it->second[static_cast<std::size_t>(s)]);
                    }
                }
                if (overlap > best_overlap) {
                    best_overlap = overlap;
                    best_bin = b;
                    best_server = s;
                }
            }
        }
        if (best_bin < 0)
            break;  // all remaining bins were pinned already
        bin_to_server[static_cast<std::size_t>(best_bin)] = best_server;
        bin_done[static_cast<std::size_t>(best_bin)] = true;
        server_taken[static_cast<std::size_t>(best_server)] = true;
    }

    // Desired per-(job, server) GPU counts under the new packing.
    std::map<JobId, std::vector<GpuCount>> desired;
    for (int b = 0; b < n; ++b) {
        int s = bin_to_server[static_cast<std::size_t>(b)];
        for (const auto &[job, cnt] : bin_jobs[static_cast<std::size_t>(b)]) {
            auto &row = desired[job];
            if (row.empty())
                row.assign(static_cast<std::size_t>(n), 0);
            row[static_cast<std::size_t>(s)] += cnt;
        }
    }

    // Materialize GPU ids: first let each job keep the ids it already
    // owns in servers where it stays, then hand out the rest.
    std::vector<JobId> new_owner(gpu_owner_.size(), kInvalidJob);
    std::map<JobId, std::vector<GpuCount>> new_gpus;
    for (auto &[job, row] : desired) {
        auto it = current_in.find(job);
        if (it == current_in.end())
            continue;  // the new job keeps nothing
        const auto &cur_gpus = job_gpus_.at(job);
        std::vector<GpuCount> kept_per_server(static_cast<std::size_t>(n), 0);
        for (GpuCount g : cur_gpus) {
            int s = topology_->server_of(g);
            if (kept_per_server[static_cast<std::size_t>(s)] <
                row[static_cast<std::size_t>(s)]) {
                new_owner[static_cast<std::size_t>(g)] = job;
                new_gpus[job].push_back(g);
                ++kept_per_server[static_cast<std::size_t>(s)];
                row[static_cast<std::size_t>(s)] -= 0;  // tracked below
            }
        }
        for (int s = 0; s < n; ++s) {
            row[static_cast<std::size_t>(s)] -=
                kept_per_server[static_cast<std::size_t>(s)];
        }
    }
    // Remaining demands pull from GPUs still unowned in the new map.
    for (auto &[job, row] : desired) {
        for (int s = 0; s < n; ++s) {
            GpuCount need = row[static_cast<std::size_t>(s)];
            if (need <= 0)
                continue;
            GpuCount base = topology_->first_gpu_of_server(s);
            for (GpuCount g = base;
                 g < base + per_server && need > 0; ++g) {
                if (new_owner[static_cast<std::size_t>(g)] == kInvalidJob) {
                    new_owner[static_cast<std::size_t>(g)] = job;
                    new_gpus[job].push_back(g);
                    --need;
                }
            }
            EF_CHECK_MSG(need == 0, "repack accounting failed");
        }
    }

    // Diff against the old layout to produce the migration list.
    result->migrations.clear();
    for (auto &[job, gpus] : new_gpus)
        std::sort(gpus.begin(), gpus.end());
    for (const auto &[job, old_set] : job_gpus_) {
        const auto &fresh = new_gpus.at(job);
        if (fresh != old_set) {
            Migration m;
            m.job = job;
            m.from = old_set;
            m.to = fresh;
            result->migrations.push_back(std::move(m));
        }
    }

    // Apply: rebuild ownership from the new map.
    std::vector<JobId> old_jobs = placed_jobs();
    for (JobId job : old_jobs)
        unassign(job);
    for (auto &[job, gpus] : new_gpus) {
        if (job == new_job)
            continue;
        assign(job, gpus);
    }
    result->ok = true;
    result->gpus = new_gpus.at(new_job);
    assign(new_job, result->gpus);
    return true;
}

PlacementResult
PlacementManager::place(JobId job, GpuCount size, PlacementStrategy strategy,
                        bool allow_migration)
{
    EF_CHECK_MSG(!is_placed(job), "job " << job << " is already placed");
    EF_CHECK_MSG(size > 0, "placement size must be positive");
    obs::count("cluster.place_requests");
    PlacementResult result;
    if (size > idle_gpus()) {
        obs::count("cluster.place_failures");
        return result;
    }

    auto direct = try_direct(size, strategy);
    if (strategy == PlacementStrategy::kBestFitCompact && allow_migration) {
        // Buddy defragmentation: if the direct placement would span
        // more servers than a compact one (or fails outright), repack
        // so the job gets the locality its scaling curve assumes.
        int compact_span =
            (size + topology_->gpus_per_server() - 1) /
            topology_->gpus_per_server();
        int compact_racks =
            (compact_span + topology_->spec().servers_per_rack - 1) /
            topology_->spec().servers_per_rack;
        bool direct_compact =
            direct.has_value() &&
            topology_->server_span(*direct) <= compact_span &&
            topology_->rack_span(*direct) <= compact_racks;
        if (!direct_compact && repack_with(job, size, &result)) {
            obs::count("cluster.repacks");
            obs::count("cluster.migrations",
                       result.migrations.size());
            return result;
        }
    }
    if (direct.has_value()) {
        result.ok = true;
        result.gpus = std::move(*direct);
        assign(job, result.gpus);
        std::sort(result.gpus.begin(), result.gpus.end());
        return result;
    }
    obs::count("cluster.place_failures");
    return result;
}

PlacementResult
PlacementManager::resize(JobId job, GpuCount new_size,
                         PlacementStrategy strategy, bool allow_migration)
{
    EF_CHECK(is_placed(job));
    EF_CHECK(new_size > 0);
    obs::count("cluster.resize_requests");
    std::vector<GpuCount> current = gpus_of(job);
    GpuCount old_size = static_cast<GpuCount>(current.size());
    PlacementResult result;
    if (new_size == old_size) {
        result.ok = true;
        result.gpus = current;
        return result;
    }

    if (new_size < old_size) {
        // Shrink: keep GPUs from the servers where the job is densest,
        // so the remaining placement is as compact as possible.
        std::map<int, std::vector<GpuCount>> by_server;
        for (GpuCount g : current)
            by_server[topology_->server_of(g)].push_back(g);
        std::vector<std::pair<int, std::vector<GpuCount>>> groups(
            by_server.begin(), by_server.end());
        std::stable_sort(groups.begin(), groups.end(),
                         [](const auto &a, const auto &b) {
                             return a.second.size() > b.second.size();
                         });
        std::vector<GpuCount> keep;
        for (const auto &[server, gpus] : groups) {
            for (GpuCount g : gpus) {
                if (static_cast<GpuCount>(keep.size()) < new_size)
                    keep.push_back(g);
            }
        }
        unassign(job);
        assign(job, keep);
        result.ok = true;
        std::sort(keep.begin(), keep.end());
        result.gpus = std::move(keep);
        return result;
    }

    // Grow: free the current GPUs, then place fresh (possibly with
    // migration); restore the old placement if that fails.
    unassign(job);
    result = place(job, new_size, strategy, allow_migration);
    if (!result.ok) {
        assign(job, current);
    }
    return result;
}

void
PlacementManager::release(JobId job)
{
    obs::count("cluster.releases");
    unassign(job);
}

void
PlacementManager::apply_moves(const std::vector<Migration> &moves)
{
    if (moves.empty())
        return;
    for (const Migration &m : moves) {
        EF_CHECK_MSG(is_placed(m.job),
                     "defrag move for unplaced job " << m.job);
        EF_CHECK_MSG(gpus_of(m.job) == m.from,
                     "defrag move stale for job " << m.job);
        EF_CHECK_MSG(m.to.size() == m.from.size(),
                     "defrag move resizes job " << m.job);
        unassign(m.job);
    }
    for (const Migration &m : moves)
        assign(m.job, m.to);
    obs::count("cluster.defrag_moves",
               static_cast<std::uint64_t>(moves.size()));
    validate();
}

void
PlacementManager::validate() const
{
    std::vector<GpuCount> free_check(free_per_server_.size(), 0);
    std::vector<GpuCount> down_check(down_per_server_.size(), 0);
    GpuCount down_total = 0;
    std::map<JobId, GpuCount> counts;
    for (GpuCount g = 0; g < topology_->total_gpus(); ++g) {
        JobId owner = gpu_owner_[static_cast<std::size_t>(g)];
        if (gpu_down_[static_cast<std::size_t>(g)]) {
            EF_CHECK_MSG(owner == kInvalidJob,
                         "down GPU " << g << " is owned");
            ++down_check[static_cast<std::size_t>(
                topology_->server_of(g))];
            ++down_total;
        } else if (owner == kInvalidJob) {
            ++free_check[static_cast<std::size_t>(topology_->server_of(g))];
        } else {
            ++counts[owner];
        }
    }
    EF_CHECK(free_check == free_per_server_);
    EF_CHECK(down_check == down_per_server_);
    EF_CHECK(down_total == down_gpus_);
    for (int s = 0; s < topology_->num_servers(); ++s) {
        if (server_down_[static_cast<std::size_t>(s)]) {
            EF_CHECK(free_per_server_[static_cast<std::size_t>(s)] +
                         down_per_server_[static_cast<std::size_t>(s)] ==
                     topology_->gpus_per_server());
        }
    }
    EF_CHECK(counts.size() == job_gpus_.size());
    for (const auto &[job, gpus] : job_gpus_) {
        EF_CHECK(counts[job] == static_cast<GpuCount>(gpus.size()));
        EF_CHECK(std::is_sorted(gpus.begin(), gpus.end()));
        for (GpuCount g : gpus)
            EF_CHECK(gpu_owner_[static_cast<std::size_t>(g)] == job);
    }
}

}  // namespace ef

#include "cluster/shard.h"

#include <algorithm>

#include "common/check.h"

namespace ef {

std::vector<PodShard>
extract_pod_shards(const Topology &topo, int max_shards)
{
    const int racks = topo.num_racks();
    const int shards = std::max(1, std::min(max_shards, racks));
    const GpuCount rack_gpus =
        topo.spec().servers_per_rack * topo.spec().gpus_per_server;

    // Contiguous balanced split: shard s owns base racks plus one of
    // the remainder racks, lowest shard ids first. Pure arithmetic in
    // (racks, shards) — no runtime state, so the cut is deterministic.
    const int base = racks / shards;
    const int rem = racks % shards;
    std::vector<PodShard> pods;
    pods.reserve(shards);
    int rack = 0;
    for (int s = 0; s < shards; ++s) {
        PodShard pod;
        pod.index = s;
        pod.first_rack = rack;
        pod.num_racks = base + (s < rem ? 1 : 0);
        pod.gpus = pod.num_racks * rack_gpus;
        rack += pod.num_racks;
        pods.push_back(pod);
    }
    EF_CHECK(rack == racks);
    return pods;
}

std::vector<PodShard>
extract_pod_shards(GpuCount total_gpus, int max_shards)
{
    EF_CHECK_MSG(total_gpus >= 1, "need at least one GPU to shard");
    Topology topo(TopologySpec::with_total_gpus(total_gpus));
    std::vector<PodShard> pods = extract_pod_shards(topo, max_shards);

    // with_total_gpus rounds the cluster up to whole servers/racks;
    // planning capacity must sum to exactly total_gpus, so shave the
    // overshoot off the trailing pods (they are the rounded-up ones).
    GpuCount excess = topo.total_gpus() - total_gpus;
    EF_CHECK(excess >= 0);
    for (auto it = pods.rbegin(); it != pods.rend() && excess > 0; ++it) {
        const GpuCount cut = std::min(excess, it->gpus);
        it->gpus -= cut;
        excess -= cut;
    }
    EF_CHECK(excess == 0);
    while (pods.size() > 1 && pods.back().gpus == 0)
        pods.pop_back();
    for (std::size_t i = 0; i < pods.size(); ++i)
        pods[i].index = static_cast<int>(i);
    return pods;
}

std::vector<GpuCount>
shard_capacities(const std::vector<PodShard> &shards)
{
    std::vector<GpuCount> gpus;
    gpus.reserve(shards.size());
    for (const PodShard &pod : shards)
        gpus.push_back(pod.gpus);
    return gpus;
}

}  // namespace ef

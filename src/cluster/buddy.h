/**
 * @file
 * Buddy-style packing math for power-of-two jobs (paper §4.3).
 *
 * ElasticFlow restricts worker counts to powers of two (like CoDDL) so
 * that, with migration, placement never suffers fragmentation: whenever
 * the cluster has enough idle GPUs for a job, a repacking exists that
 * gives the job a maximally compact set of GPUs.
 *
 * This module provides the pure packing algorithms the placement
 * manager builds on: first-fit-decreasing packing of power-of-two items
 * into fixed-capacity bins, and a feasibility predicate. With
 * power-of-two item sizes and power-of-two bin capacity, descending
 * first-fit is *perfect*: every bin except possibly the last partially
 * used one has no unusable gap, because each placed item size divides
 * the remaining free space of any bin it is offered.
 */
#ifndef EF_CLUSTER_BUDDY_H_
#define EF_CLUSTER_BUDDY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ef {

/** An item to pack: a job fragment that must stay within one bin. */
struct PackItem
{
    std::int64_t id = 0;   ///< opaque owner id (job id)
    GpuCount size = 0;     ///< power of two, <= bin capacity
};

/** Result of packing: bin index assigned to each input item. */
struct Packing
{
    bool feasible = false;
    std::vector<int> bin_of_item;  ///< parallel to the input item vector
    std::vector<GpuCount> bin_used;
};

/**
 * Pack power-of-two items into @p num_bins bins of capacity
 * @p bin_capacity (a power of two) with first-fit decreasing.
 *
 * @return Packing with feasible=false when total size exceeds total
 *         capacity; with power-of-two sizes the converse always packs.
 */
Packing pack_power_of_two(const std::vector<PackItem> &items, int num_bins,
                          GpuCount bin_capacity);

/**
 * True iff a new item of @p size (power of two, may exceed the bin
 * capacity, in which case it needs size/capacity whole bins) fits after
 * repacking the existing items. Items larger than a bin are expressed
 * by the caller as multiple whole-bin fragments.
 */
bool fits_after_repack(const std::vector<PackItem> &existing, GpuCount size,
                       int num_bins, GpuCount bin_capacity);

}  // namespace ef

#endif  // EF_CLUSTER_BUDDY_H_

#include "defrag/defrag.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/fragmentation.h"
#include "common/check.h"
#include "common/hash.h"
#include "obs/metrics.h"

namespace ef {
namespace defrag {
namespace {

/** Per-server GPU counts of one job; index = server id. */
using Row = std::vector<GpuCount>;

GpuCount
row_size(const Row &row)
{
    GpuCount total = 0;
    for (GpuCount c : row)
        total += c;
    return total;
}

int
row_span(const Row &row)
{
    int span = 0;
    for (GpuCount c : row)
        if (c > 0)
            ++span;
    return span;
}

PlacementShape
shape_from_row(const Topology &topology, const Row &row)
{
    PlacementShape shape;
    shape.workers = row_size(row);
    shape.server_span = row_span(row);
    shape.rack_span = 0;
    int last_rack = -1;
    // Servers ascend, and rack ids ascend with server ids, so
    // counting rack transitions over occupied servers counts racks.
    for (int s = 0; s < static_cast<int>(row.size()); ++s) {
        if (row[static_cast<std::size_t>(s)] <= 0)
            continue;
        const int rack = topology.rack_of_server(s);
        if (rack != last_rack) {
            ++shape.rack_span;
            last_rack = rack;
        }
    }
    if (shape.server_span == 0)
        shape.server_span = 1;
    if (shape.rack_span == 0)
        shape.rack_span = 1;
    return shape;
}

/** Buddy external fragmentation of a per-server free vector. */
double
frag_of_free(const std::vector<GpuCount> &free)
{
    GpuCount idle = 0;
    GpuCount usable = 0;
    for (GpuCount f : free) {
        idle += f;
        usable += buddy_block_floor(f);
    }
    if (idle <= 0)
        return 0.0;
    return 1.0 - static_cast<double>(usable) / static_cast<double>(idle);
}

/** Checkpoint+restore cost units for relocating one job. */
double
move_cost_units(GpuCount size)
{
    return static_cast<double>(size);
}

}  // namespace

Defragmenter::Defragmenter(const DefragConfig &config,
                           const Topology *topology, const PerfModel *perf)
    : config_(config), topology_(topology), perf_(perf),
      rng_(config.seed), governor_(config.governor)
{
    EF_CHECK(topology_ != nullptr && perf_ != nullptr);
    EF_CHECK_MSG(config_.budget_units_per_round > 0.0,
                 "defragmenter built with a zero budget");
    EF_CHECK(config_.max_steps > 0);
    EF_CHECK(config_.cooling > 0.0 && config_.cooling <= 1.0);
}

bool
Defragmenter::try_begin_round(Time now)
{
    return governor_.try_acquire(now);
}

double
Defragmenter::objective(const std::vector<Row> &rows,
                        const std::vector<DefragJob> &jobs,
                        const std::vector<GpuCount> &free) const
{
    double total = 0.0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const GpuCount size = row_size(rows[j]);
        const double compact = perf_->compact_throughput(
            jobs[j].model, jobs[j].global_batch, size);
        const double actual = perf_->throughput(
            jobs[j].model, jobs[j].global_batch,
            shape_from_row(*topology_, rows[j]));
        if (compact > 0.0)
            total += 1.0 - actual / compact;
    }
    return total + config_.frag_weight * frag_of_free(free);
}

DefragPlan
Defragmenter::plan_round(const PlacementManager &placement,
                         const std::vector<DefragJob> &jobs)
{
    ++rounds_;
    DefragPlan plan;

    const int num_servers = topology_->num_servers();
    const std::size_t n = jobs.size();

    // --- build the abstract search state -----------------------------
    std::vector<Row> rows(n);
    std::vector<GpuCount> sizes(n, 0);
    std::vector<double> compact_tpt(n, 0.0);
    std::vector<double> loss(n, 0.0);
    double sum_loss = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        EF_CHECK(placement.is_placed(jobs[j].id));
        if (j > 0)
            EF_CHECK_MSG(jobs[j].id > jobs[j - 1].id,
                         "defrag jobs must ascend by id");
        rows[j].assign(static_cast<std::size_t>(num_servers), 0);
        for (GpuCount g : placement.gpus_of(jobs[j].id))
            ++rows[j][static_cast<std::size_t>(topology_->server_of(g))];
        sizes[j] = row_size(rows[j]);
        compact_tpt[j] = perf_->compact_throughput(
            jobs[j].model, jobs[j].global_batch, sizes[j]);
    }
    std::vector<GpuCount> free(static_cast<std::size_t>(num_servers), 0);
    for (int s = 0; s < num_servers; ++s)
        free[static_cast<std::size_t>(s)] = placement.free_in_server(s);

    // Delta-evaluation oracle: the loss of one job from its row.
    auto loss_of = [&](std::size_t j, const Row &row) {
        if (compact_tpt[j] <= 0.0)
            return 0.0;
        const double actual = perf_->throughput(
            jobs[j].model, jobs[j].global_batch,
            shape_from_row(*topology_, row));
        return 1.0 - actual / compact_tpt[j];
    };
    for (std::size_t j = 0; j < n; ++j) {
        loss[j] = loss_of(j, rows[j]);
        sum_loss += loss[j];
    }

    const std::vector<Row> initial_rows = rows;
    std::vector<bool> moved(n, false);
    double moved_cost = 0.0;
    double obj = sum_loss + config_.frag_weight * frag_of_free(free);
    plan.objective_before = obj;

    // Best feasible state seen so far (starts at the initial layout).
    std::vector<Row> best_rows = rows;
    double best_obj = obj;
    double best_cost = 0.0;

    // Replace job j's row; keeps free/loss/moved bookkeeping in sync.
    auto set_row = [&](std::size_t j, const Row &next) {
        for (int s = 0; s < num_servers; ++s) {
            const std::size_t si = static_cast<std::size_t>(s);
            free[si] += rows[j][si] - next[si];
        }
        rows[j] = next;
        sum_loss -= loss[j];
        loss[j] = loss_of(j, rows[j]);
        sum_loss += loss[j];
        const bool now_moved = rows[j] != initial_rows[j];
        if (now_moved != moved[j]) {
            moved[j] = now_moved;
            moved_cost += now_moved ? move_cost_units(sizes[j])
                                    : -move_cost_units(sizes[j]);
        }
    };

    // --- simulated annealing over the move set -----------------------
    double temperature = config_.init_temperature;
    for (int step = 0; n > 0 && step < config_.max_steps; ++step) {
        ++plan.steps;
        const std::int64_t kind = rng_.uniform_int(0, 2);
        const std::size_t j = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));

        // Proposals mutate copies; `touched` lists (job, old row)
        // pairs so a rejected candidate reverts exactly.
        std::vector<std::pair<std::size_t, Row>> touched;
        bool feasible = false;
        if (kind == 0) {
            // relocate: whole job into one server.
            std::vector<int> candidates;
            for (int s = 0; s < num_servers; ++s) {
                const std::size_t si = static_cast<std::size_t>(s);
                if (free[si] + rows[j][si] < sizes[j])
                    continue;
                if (rows[j][si] == sizes[j])
                    continue;  // no-op: already all in s
                candidates.push_back(s);
            }
            if (!candidates.empty()) {
                const std::size_t pick = static_cast<std::size_t>(
                    rng_.uniform_int(
                        0,
                        static_cast<std::int64_t>(candidates.size()) - 1));
                Row next(static_cast<std::size_t>(num_servers), 0);
                next[static_cast<std::size_t>(candidates[pick])] = sizes[j];
                touched.emplace_back(j, rows[j]);
                set_row(j, next);
                feasible = true;
            }
        } else if (kind == 1) {
            // compact: fold the smallest chunk into another of the
            // job's servers, shrinking span by one.
            int chunk_server = -1;
            for (int s = 0; s < num_servers; ++s) {
                const std::size_t si = static_cast<std::size_t>(s);
                if (rows[j][si] <= 0)
                    continue;
                if (chunk_server < 0 ||
                    rows[j][si] <
                        rows[j][static_cast<std::size_t>(chunk_server)])
                    chunk_server = s;
            }
            if (chunk_server >= 0 && row_span(rows[j]) >= 2) {
                const GpuCount chunk =
                    rows[j][static_cast<std::size_t>(chunk_server)];
                int dest = -1;
                for (int s = 0; s < num_servers; ++s) {
                    const std::size_t si = static_cast<std::size_t>(s);
                    if (s == chunk_server || rows[j][si] <= 0 ||
                        free[si] < chunk)
                        continue;
                    if (dest < 0 ||
                        free[si] > free[static_cast<std::size_t>(dest)])
                        dest = s;
                }
                if (dest >= 0) {
                    Row next = rows[j];
                    next[static_cast<std::size_t>(chunk_server)] = 0;
                    next[static_cast<std::size_t>(dest)] += chunk;
                    touched.emplace_back(j, rows[j]);
                    set_row(j, next);
                    feasible = true;
                }
            }
        } else {
            // swap: exchange rows of two equal-size jobs. Per-server
            // totals are unchanged, so a swap is always feasible.
            std::vector<std::size_t> partners;
            for (std::size_t k = 0; k < n; ++k)
                if (k != j && sizes[k] == sizes[j] && rows[k] != rows[j])
                    partners.push_back(k);
            if (!partners.empty()) {
                const std::size_t k = partners[static_cast<std::size_t>(
                    rng_.uniform_int(
                        0,
                        static_cast<std::int64_t>(partners.size()) - 1))];
                const Row row_j = rows[j];
                const Row row_k = rows[k];
                touched.emplace_back(j, row_j);
                touched.emplace_back(k, row_k);
                set_row(j, row_k);
                set_row(k, row_j);
                feasible = true;
            }
        }

        if (feasible) {
            const double next_obj =
                sum_loss + config_.frag_weight * frag_of_free(free);
            const double delta = next_obj - obj;
            bool accept;
            if (moved_cost >
                config_.budget_units_per_round + 1e-9) {
                // Over budget: never acceptable, whatever the gain.
                accept = false;
            } else if (delta < 0.0) {
                accept = true;
            } else {
                accept = rng_.uniform_real(0.0, 1.0) <
                         std::exp(-delta / std::max(temperature, 1e-12));
            }
            if (accept) {
                obj = next_obj;
                ++plan.accepted;
                if (obj < best_obj - 1e-12) {
                    best_rows = rows;
                    best_obj = obj;
                    best_cost = moved_cost;
                }
            } else {
                // Revert in reverse order so swaps unwind cleanly.
                for (auto it = touched.rbegin(); it != touched.rend();
                     ++it)
                    set_row(it->first, it->second);
            }
        }
        temperature *= config_.cooling;
    }

    plan.objective_after = plan.objective_before;
    if (best_obj >= plan.objective_before - config_.min_gain)
        return plan;  // no committable improvement

    // --- materialize the best layout into concrete GPU ids ----------
    // Pool = free GPUs plus everything owned by moved jobs; moved jobs
    // then draw from it ascending, preferring their own previous ids
    // so unchanged chunks keep their exact GPUs.
    std::vector<std::vector<GpuCount>> pool(
        static_cast<std::size_t>(num_servers));
    for (GpuCount g = 0; g < topology_->total_gpus(); ++g) {
        const int s = topology_->server_of(g);
        if (placement.owner_of(g) == kInvalidJob &&
            placement.gpu_available(g) && placement.server_available(s))
            pool[static_cast<std::size_t>(s)].push_back(g);
    }
    std::vector<std::size_t> moved_jobs;
    for (std::size_t j = 0; j < n; ++j) {
        if (best_rows[j] == initial_rows[j])
            continue;
        moved_jobs.push_back(j);
        for (GpuCount g : placement.gpus_of(jobs[j].id))
            pool[static_cast<std::size_t>(topology_->server_of(g))]
                .push_back(g);
    }
    for (auto &ids : pool)
        std::sort(ids.begin(), ids.end());

    for (std::size_t j : moved_jobs) {
        const std::vector<GpuCount> &from = placement.gpus_of(jobs[j].id);
        std::vector<GpuCount> to;
        for (int s = 0; s < num_servers; ++s) {
            const std::size_t si = static_cast<std::size_t>(s);
            GpuCount want = best_rows[j][si];
            if (want <= 0)
                continue;
            auto take = [&](bool own_only) {
                for (std::size_t i = 0;
                     want > 0 && i < pool[si].size();) {
                    const GpuCount g = pool[si][i];
                    const bool own = std::binary_search(
                        from.begin(), from.end(), g);
                    if (!own_only || own) {
                        to.push_back(g);
                        pool[si].erase(
                            pool[si].begin() +
                            static_cast<std::ptrdiff_t>(i));
                        --want;
                    } else {
                        ++i;
                    }
                }
            };
            take(true);
            take(false);
            EF_CHECK_MSG(want == 0, "defrag pool underflow in server "
                                        << s << " for job "
                                        << jobs[j].id);
        }
        std::sort(to.begin(), to.end());
        Migration m;
        m.job = jobs[j].id;
        m.from = from;
        m.to = to;
        plan.moves.push_back(m);
    }

    plan.objective_after = best_obj;
    plan.cost_units = best_cost;
    budget_spent_units_ += best_cost;
    moves_committed_ += plan.moves.size();
    last_batch_ = plan.moves;
    obs::count("defrag.moves",
               static_cast<std::uint64_t>(plan.moves.size()));
    return plan;
}

std::uint64_t
Defragmenter::fingerprint() const
{
    Fnv1a h;
    h.u64(rng_.seed());
    h.u64(rng_.draws());
    h.u64(rng_.forks());
    h.u64(governor_.fingerprint());
    h.u64(rounds_);
    h.u64(moves_committed_);
    h.f64(budget_spent_units_);
    h.u64(last_batch_.size());
    for (const Migration &m : last_batch_) {
        h.i64(m.job);
        for (GpuCount g : m.from)
            h.i64(g);
        for (GpuCount g : m.to)
            h.i64(g);
    }
    return h.digest();
}

void
Defragmenter::encode_state(recover::Encoder *enc) const
{
    enc->str(rng_.engine_state());
    enc->u64(rng_.draws());
    enc->u64(rng_.forks());
    enc->f64(governor_.tokens_raw());
    enc->f64(governor_.last_refill());
    enc->u64(rounds_);
    enc->u64(moves_committed_);
    enc->f64(budget_spent_units_);
    enc->u64(last_batch_.size());
    for (const Migration &m : last_batch_) {
        enc->i64(m.job);
        enc->u64(m.from.size());
        for (GpuCount g : m.from)
            enc->i64(g);
        enc->u64(m.to.size());
        for (GpuCount g : m.to)
            enc->i64(g);
    }
}

bool
Defragmenter::decode_state(recover::Decoder *dec)
{
    std::string engine;
    std::uint64_t draws = 0;
    std::uint64_t forks = 0;
    double tokens = 0.0;
    double last_refill = 0.0;
    std::uint64_t batch = 0;
    if (!dec->str(&engine) || !dec->u64(&draws) || !dec->u64(&forks) ||
        !dec->f64(&tokens) || !dec->f64(&last_refill) ||
        !dec->u64(&rounds_) || !dec->u64(&moves_committed_) ||
        !dec->f64(&budget_spent_units_) ||
        !dec->count(&batch, 3 * 8))
        return false;
    last_batch_.clear();
    for (std::uint64_t i = 0; i < batch; ++i) {
        Migration m;
        std::int64_t job = 0;
        std::uint64_t from_n = 0;
        std::uint64_t to_n = 0;
        if (!dec->i64(&job) || !dec->count(&from_n, 8))
            return false;
        m.job = job;
        m.from.resize(from_n);
        for (std::uint64_t k = 0; k < from_n; ++k) {
            std::int64_t g = 0;
            if (!dec->i64(&g))
                return false;
            m.from[k] = static_cast<GpuCount>(g);
        }
        if (!dec->count(&to_n, 8))
            return false;
        m.to.resize(to_n);
        for (std::uint64_t k = 0; k < to_n; ++k) {
            std::int64_t g = 0;
            if (!dec->i64(&g))
                return false;
            m.to[k] = static_cast<GpuCount>(g);
        }
        last_batch_.push_back(std::move(m));
    }
    rng_.restore(engine, draws, forks);
    governor_.restore(tokens, last_refill);
    return dec->ok();
}

}  // namespace defrag
}  // namespace ef

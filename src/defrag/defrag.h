/**
 * @file
 * ef::defrag — search-based background defragmentation with a
 * migration-cost budget (DESIGN.md §14, ROADMAP item 2).
 *
 * ElasticFlow's buddy allocation is greedy first-fit; under churn the
 * cluster fragments until cross-server placements dominate (the paper
 * measures ResNet50 at ≈2.17× throughput on one server vs. eight).
 * The defragmenter is the repo's first optimizer that *searches*
 * rather than greedily fills: a simulated-annealing local search over
 * migration moves, run as a governor-gated background round in the
 * planning loop.
 *
 * Search model. Placement is abstracted to per-server GPU counts (one
 * row per job), because PerfModel throughput depends only on the
 * placement *shape* (workers, server span, rack span) — so candidate
 * moves are evaluated by a cheap delta: recompute the shapes of the
 * touched jobs plus a buddy external-fragmentation term over the
 * per-server free counts. Microseconds per candidate, no concrete GPU
 * ids until commit.
 *
 * Move set (SET-style local search):
 *  - relocate: put a whole job into one server that can hold it
 *    (compact-into-buddy-block),
 *  - compact:  fold a spanning job's smallest chunk into one of its
 *    other servers, shrinking span by one,
 *  - swap:     exchange the rows of two equal-size jobs (always
 *    capacity-feasible: per-server totals are unchanged).
 *
 * Acceptance schedule: classic Metropolis — accept improving moves,
 * accept worsening moves with probability exp(-Δ/T), geometric
 * cooling T ← cooling·T each step.
 *
 * Budget. Every job whose final row differs from its initial row
 * costs `size` cost units (one checkpoint+restore per worker);
 * returning a job to its initial row refunds it. Candidate states
 * whose total batch cost exceeds `budget_units_per_round` are
 * rejected during the search, so a committed round can never exceed
 * the budget and repacking never regresses a deadline by more than
 * the budgeted pause time. The best feasible state is committed only
 * on strict improvement.
 *
 * Determinism contract: the SA stream is an `ef::Rng` whose cursor
 * (and engine state), the governor bucket, the budget ledger and the
 * accepted-move log all fold into `fingerprint()` and the snapshot
 * codec, so defrag-enabled runs double-run, shard-sweep and
 * crash-recover to byte-identical `state_hash` values.
 */
#ifndef EF_DEFRAG_DEFRAG_H_
#define EF_DEFRAG_DEFRAG_H_

#include <cstdint>
#include <vector>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "common/types.h"
#include "recover/codec.h"
#include "serve/governor.h"
#include "workload/model_zoo.h"
#include "workload/perf_model.h"

namespace ef {
namespace defrag {

/** Tuning knobs for the background defragmenter. */
struct DefragConfig
{
    /** Master switch; the simulator also requires a positive budget. */
    bool enabled = false;

    /**
     * Migration-cost budget per round, in checkpoint+restore cost
     * units: moving a job costs its worker count. 0 disables defrag
     * entirely (the simulator then behaves byte-identically to
     * enabled = false).
     */
    double budget_units_per_round = 16.0;

    /** SA proposals evaluated per round. */
    int max_steps = 400;
    /** Initial Metropolis temperature. */
    double init_temperature = 0.25;
    /** Geometric cooling factor applied after every step. */
    double cooling = 0.97;
    /** Minimum objective improvement required to commit a batch. */
    double min_gain = 1e-6;
    /** Weight of the buddy external-fragmentation objective term. */
    double frag_weight = 0.25;

    /** Seed of the dedicated SA stream (independent of the trace). */
    std::uint64_t seed = 0xdef7a60ULL;

    /**
     * Token bucket gating defrag rounds on *simulated* time: at most
     * one background repack per 10 simulated minutes by default, and
     * never a forced round — defrag work is strictly best-effort.
     */
    serve::GovernorConfig governor = {1.0 / 600.0, 1.0, kTimeInfinity};
};

/** What the cost oracle needs to know about one placed job. */
struct DefragJob
{
    JobId id = kInvalidJob;
    DnnModel model = DnnModel::kResNet50;
    int global_batch = 0;
};

/** Result of one defrag round. */
struct DefragPlan
{
    /** Accepted move batch, ascending JobId; empty when no gain. */
    std::vector<Migration> moves;
    /** Objective before / after the batch (lower is better). */
    double objective_before = 0.0;
    double objective_after = 0.0;
    /** Cost units charged against this round's budget. */
    double cost_units = 0.0;
    /** Proposals evaluated / accepted during the search. */
    int steps = 0;
    int accepted = 0;
};

/**
 * The background repacker. One instance lives inside the simulator
 * (null unless enabled with a positive budget); all its mutable state
 * is hashed, snapshotted and journal-replayed.
 */
class Defragmenter
{
  public:
    Defragmenter(const DefragConfig &config, const Topology *topology,
                 const PerfModel *perf);

    const DefragConfig &config() const { return config_; }

    /**
     * Take a round token at simulated time @p now. The caller runs
     * plan_round() only after this returns true, so the RNG advances
     * exactly once per funded round.
     */
    bool try_begin_round(Time now);

    /**
     * One SA round over the current placement. Advances the SA
     * stream, the round counter and — when moves are committed — the
     * budget ledger and accepted-move log. @p jobs must list exactly
     * the placed jobs eligible to move, ascending by id.
     */
    DefragPlan plan_round(const PlacementManager &placement,
                          const std::vector<DefragJob> &jobs);

    /** Rounds planned so far (including empty ones). */
    std::uint64_t rounds() const { return rounds_; }
    /** Total moves committed across all rounds. */
    std::uint64_t moves_committed() const { return moves_committed_; }
    /** Budget ledger: cost units spent across all rounds. */
    double budget_spent_units() const { return budget_spent_units_; }
    /** Accepted move batch of the most recent committing round. */
    const std::vector<Migration> &last_batch() const { return last_batch_; }

    /**
     * FNV-1a digest of all mutable defrag state (SA cursor, governor
     * bucket, counters, ledger, accepted-move log); folded into the
     * simulator's state_hash whenever defrag is enabled.
     */
    std::uint64_t fingerprint() const;

    /** Snapshot codec (DESIGN.md §12); symmetric encode/decode. */
    void encode_state(recover::Encoder *enc) const;
    bool decode_state(recover::Decoder *dec);

  private:
    double objective(const std::vector<std::vector<GpuCount>> &rows,
                     const std::vector<DefragJob> &jobs,
                     const std::vector<GpuCount> &free) const;

    // ef-audit: transient(all: construction-time constant, re-supplied when the simulator is rebuilt)
    DefragConfig config_;
    // ef-audit: transient(all: borrowed topology, owned by the simulator)
    const Topology *topology_;
    // ef-audit: transient(all: borrowed cost oracle, owned by the simulator)
    const PerfModel *perf_;

    /** Dedicated SA stream; cursor + engine state are persistent. */
    Rng rng_;
    /** Round-cadence token bucket over simulated time. */
    serve::ReplanGovernor governor_;
    std::uint64_t rounds_ = 0;
    std::uint64_t moves_committed_ = 0;
    /** Budget ledger: cumulative cost units charged. */
    double budget_spent_units_ = 0.0;
    /** Accepted-move log: the most recent committed batch. */
    std::vector<Migration> last_batch_;
};

}  // namespace defrag
}  // namespace ef

#endif  // EF_DEFRAG_DEFRAG_H_
